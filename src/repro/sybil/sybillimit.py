"""SybilLimit (Yu, Gibbons, Kaminsky, Xiao — Oakland 2008).

The defense the paper implements and measures (Section 5, Figure 8).
Every node runs ``r = r0 * sqrt(m)`` random-route instances of length
``w``; the *tail* of a route is its last (undirected) edge.  A verifier V
accepts a suspect S when

* **intersection** — some tail of S equals some tail of V, and
* **balance** — crediting S to the least-loaded intersecting V-tail does
  not push that tail's load above ``b = max(b0, a * (A + 1) / r)``, where
  A counts suspects accepted so far.

Correctness rests on tails being distributed ≈ stationarily over edges,
which holds only when ``w`` reaches the graph's mixing time — exactly the
assumption the paper falsifies.  The experiment: with no attacker, sweep
``w`` and record the fraction of honest suspects a verifier admits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .._util import as_rng
from ..core.runtime import ExecutionPolicy, as_policy
from ..errors import ScenarioError
from ..obs import OBS
from .routes import RouteInstances
from .scenario import SybilScenario

__all__ = ["SybilLimitParams", "SybilLimitOutcome", "SybilLimit", "default_num_instances"]


def default_num_instances(num_edges: int, r0: float = 3.0) -> int:
    """``r = r0 * sqrt(m)`` — the birthday-paradox sizing from the paper.

    With both V's and S's tails ~uniform over the m undirected edges, the
    probability that two r-sized samples intersect is ≈ 1 - exp(-r0²), so
    r0 = 3 gives ≈ 99.99% (the paper: "r0 is computed from the birthday
    paradox to guarantee a given intersection probability").
    """
    if num_edges < 1:
        raise ScenarioError("num_edges must be positive")
    return max(1, int(round(r0 * np.sqrt(num_edges))))


@dataclass(frozen=True)
class SybilLimitParams:
    """Protocol parameters.

    Attributes
    ----------
    route_length:
        w — the random-route length (the knob Figure 8 sweeps).
    num_instances:
        r — number of independent instances (``None`` → r0·sqrt(m)).
    r0:
        Birthday-paradox multiplier used when ``num_instances`` is None.
    balance_base:
        b0 — the floor of the balance bound (SybilLimit uses Θ(log r)).
    balance_factor:
        a — multiplicative slack of the balance bound (paper uses 4).
    enforce_balance:
        Disable to measure the intersection condition alone.
    """

    route_length: int
    num_instances: Optional[int] = None
    r0: float = 3.0
    balance_base: Optional[float] = None
    balance_factor: float = 4.0
    enforce_balance: bool = True

    def resolve_instances(self, num_edges: int) -> int:
        if self.num_instances is not None:
            if self.num_instances < 1:
                raise ScenarioError("num_instances must be >= 1")
            return int(self.num_instances)
        return default_num_instances(num_edges, self.r0)

    def resolve_balance_base(self, r: int) -> float:
        if self.balance_base is not None:
            return float(self.balance_base)
        return float(max(1.0, np.log(max(r, 2))))


@dataclass
class SybilLimitOutcome:
    """Result of one verifier's admission pass.

    ``accepted[i]`` says whether ``suspects[i]`` was admitted;
    ``intersected[i]`` whether the tail sets even intersected (accepted
    implies intersected; the gap is the balance condition's rejections).
    """

    verifier: int
    suspects: np.ndarray
    accepted: np.ndarray
    intersected: np.ndarray
    route_length: int
    num_instances: int

    @property
    def admission_rate(self) -> float:
        """Fraction of suspects accepted."""
        if self.suspects.size == 0:
            return float("nan")
        return float(self.accepted.mean())

    def accepted_nodes(self) -> np.ndarray:
        return self.suspects[self.accepted]


class SybilLimit:
    """A SybilLimit deployment over a :class:`SybilScenario`.

    All nodes (honest and sybil) participate in the same route instances
    — exactly as in a real deployment, where the attacker's region is
    simply part of the graph.
    """

    def __init__(
        self,
        scenario: SybilScenario,
        params: SybilLimitParams,
        *,
        seed=None,
    ):
        self._scenario = scenario
        self._params = params
        graph = scenario.graph
        self._r = params.resolve_instances(graph.num_edges)
        rng = as_rng(seed)
        self._route_seed = int(rng.integers(2**63))
        self._tail_seed = int(rng.integers(2**63))
        # Cache route tables only when r is small enough that the memory
        # cost (r * 2m int64) stays under ~256 MB.
        cache_ok = self._r * 2 * graph.num_edges * 8 <= 256 * 2**20
        self._routes = RouteInstances(
            graph, self._r, seed=self._route_seed, cache_tables=cache_ok
        )

    @property
    def scenario(self) -> SybilScenario:
        return self._scenario

    @property
    def num_instances(self) -> int:
        return self._r

    @property
    def params(self) -> SybilLimitParams:
        return self._params

    # ------------------------------------------------------------------
    def _tail_edge_sets(
        self,
        nodes: np.ndarray,
        lengths: np.ndarray,
        *,
        policy: Optional[ExecutionPolicy] = None,
    ) -> np.ndarray:
        """Undirected tail-edge ids for each node/instance/length."""
        slots = self._routes.tails_at_lengths(
            nodes, lengths, seed=self._tail_seed, policy=policy
        )
        return self._routes.undirected_edge_ids(slots)

    def _admit(
        self,
        verifier_tails: np.ndarray,
        suspect_tails: np.ndarray,
        suspects: np.ndarray,
        *,
        order_seed,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Run intersection + balance for one verifier at one length.

        The intersection screen and the edge → verifier-tail join are
        fully vectorised (a sort-based ``searchsorted`` join against the
        sorted unique verifier edges, plus a CSR-style map from each
        edge to the verifier tail indices that ended on it); only the
        balance-bound update remains a sequential loop — it is
        *inherently* order-dependent (each admission changes the loads
        the next decision sees) — and that loop now touches only the
        suspects that actually intersect, with their candidate edges
        pre-extracted.  With ``enforce_balance=False`` admission is the
        intersection screen itself and the path is loop-free.

        Admission order, candidate enumeration order and the
        least-loaded tie-break replicate the historical implementation
        exactly, so verdicts are bit-for-bit unchanged.
        """
        r = self._r
        params = self._params
        telemetry = OBS.enabled

        # The admission permutation must be drawn unconditionally: the
        # sweep hands one rng down through every length, so skipping the
        # draw on any path would shift every later length's stream.
        order = as_rng(order_seed).permutation(suspects.size)

        # --- Phase 1: sorted join of suspect tails vs verifier tails --
        with OBS.span("sybil.admission.join", suspects=int(suspects.size), r=r):
            # Verifier tails grouped by edge: a stable argsort yields, for
            # each distinct edge, its tail indices in ascending order —
            # the same enumeration order the old dict-of-lists produced.
            by_edge = np.argsort(verifier_tails, kind="stable")
            unique_edges, edge_counts = np.unique(
                verifier_tails, return_counts=True
            )
            edge_ptr = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(edge_counts)]
            )
            # Intersection screen: binary-search every suspect tail
            # against the sorted unique verifier edges.
            found = np.searchsorted(unique_edges, suspect_tails)
            found = np.minimum(found, unique_edges.size - 1)
            hit_mask = unique_edges[found] == suspect_tails
            intersected = hit_mask.any(axis=1)
            if telemetry:
                OBS.add("sybil.admission.tail_comparisons", int(suspect_tails.size))
                OBS.add("sybil.admission.intersecting", int(intersected.sum()))

        accepted = np.zeros(suspects.size, dtype=bool)
        if not params.enforce_balance:
            # Fast path: admission *is* intersection; nothing sequential
            # remains and no per-suspect work happens at all.
            accepted[intersected] = True
            return accepted, intersected.copy()

        # --- Phase 2: sequential balance updates over intersecting rows
        with OBS.span(
            "sybil.admission.balance", intersecting=int(intersected.sum())
        ):
            # Pre-extract every suspect's hit tails once (row-major order
            # matches the old per-suspect boolean masking) as a CSR over
            # suspects, so the loop below does array slicing, not O(r)
            # masking per suspect.
            rows, cols = np.nonzero(hit_mask)
            row_counts = np.bincount(rows, minlength=suspects.size)
            row_ptr = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(row_counts)]
            )
            hit_edges = suspect_tails[rows, cols]
            # Candidate enumeration order must replicate the historical
            # per-suspect ``set`` iteration (it fixes the least-loaded
            # tie-break), so the loop builds the same small set from the
            # same values in the same insertion order.
            edge_slice = {
                int(edge): (int(edge_ptr[k]), int(edge_ptr[k + 1]))
                for k, edge in enumerate(unique_edges)
            }
            loads = np.zeros(r, dtype=np.int64)
            b0 = params.resolve_balance_base(r)
            a = params.balance_factor
            accepted_count = 0
            for pos in order:
                if not intersected[pos]:
                    continue
                chunks = []
                for edge in set(
                    int(e) for e in hit_edges[row_ptr[pos]:row_ptr[pos + 1]]
                ):
                    lo, hi = edge_slice[edge]
                    chunks.append(by_edge[lo:hi])
                candidates = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
                # First minimum — the same tie-break as min(key=loads).
                best = candidates[np.argmin(loads[candidates])]
                bound = max(b0, a * (accepted_count + 1) / r)
                if loads[best] + 1 > bound:
                    continue
                loads[best] += 1
                accepted[pos] = True
                accepted_count += 1
            if telemetry:
                OBS.add("sybil.admission.balance_updates", accepted_count)
        return accepted, intersected

    # ------------------------------------------------------------------
    def run(
        self,
        verifier: int,
        suspects: Optional[Sequence[int]] = None,
        *,
        seed=None,
        workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> SybilLimitOutcome:
        """Admit ``suspects`` (default: every other node) against one verifier."""
        outcomes = self.admission_sweep(
            verifier,
            [self._params.route_length],
            suspects=suspects,
            seed=seed,
            policy=as_policy(policy, workers=workers),
        )
        return outcomes[0]

    def admission_sweep(
        self,
        verifier: int,
        walk_lengths: Sequence[int],
        suspects: Optional[Sequence[int]] = None,
        *,
        seed=None,
        workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> List[SybilLimitOutcome]:
        """Admission outcomes at several route lengths (Figure 8's sweep).

        Routes are advanced incrementally, so the sweep costs one pass to
        ``max(walk_lengths)`` regardless of how many checkpoints it has.
        ``workers`` fans the route-tail computation (the dominant cost)
        out across the shared-memory fork pool; verdicts are bit-for-bit
        identical to the serial sweep at any worker count.
        """
        policy = as_policy(policy, workers=workers)
        graph = self._scenario.graph
        if suspects is None:
            suspects = np.setdiff1d(
                np.arange(graph.num_nodes, dtype=np.int64), [int(verifier)]
            )
        else:
            suspects = np.asarray(list(suspects), dtype=np.int64)
        lengths = np.asarray(sorted(set(int(w) for w in walk_lengths)), dtype=np.int64)
        rng = as_rng(seed)

        with OBS.span(
            "sybil.admission_sweep",
            suspects=int(suspects.size),
            lengths=int(lengths.size),
            instances=self._r,
            enforce_balance=bool(self._params.enforce_balance),
        ):
            all_nodes = np.concatenate([[int(verifier)], suspects])
            tails = self._tail_edge_sets(all_nodes, lengths, policy=policy)
            outcomes: List[SybilLimitOutcome] = []
            for li, w in enumerate(lengths):
                verifier_tails = tails[0, :, li]
                suspect_tails = tails[1:, :, li]
                accepted, intersected = self._admit(
                    verifier_tails,
                    suspect_tails,
                    suspects,
                    order_seed=rng,
                )
                if OBS.enabled:
                    OBS.event(
                        "admission_checkpoint",
                        route_length=int(w),
                        accepted=int(accepted.sum()),
                        intersected=int(intersected.sum()),
                    )
                outcomes.append(
                    SybilLimitOutcome(
                        verifier=int(verifier),
                        suspects=suspects,
                        accepted=accepted,
                        intersected=intersected,
                        route_length=int(w),
                        num_instances=self._r,
                    )
                )
        return outcomes
