"""SybilLimit (Yu, Gibbons, Kaminsky, Xiao — Oakland 2008).

The defense the paper implements and measures (Section 5, Figure 8).
Every node runs ``r = r0 * sqrt(m)`` random-route instances of length
``w``; the *tail* of a route is its last (undirected) edge.  A verifier V
accepts a suspect S when

* **intersection** — some tail of S equals some tail of V, and
* **balance** — crediting S to the least-loaded intersecting V-tail does
  not push that tail's load above ``b = max(b0, a * (A + 1) / r)``, where
  A counts suspects accepted so far.

Correctness rests on tails being distributed ≈ stationarily over edges,
which holds only when ``w`` reaches the graph's mixing time — exactly the
assumption the paper falsifies.  The experiment: with no attacker, sweep
``w`` and record the fraction of honest suspects a verifier admits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .._util import as_rng
from .routes import RouteInstances
from .scenario import SybilScenario

__all__ = ["SybilLimitParams", "SybilLimitOutcome", "SybilLimit", "default_num_instances"]


def default_num_instances(num_edges: int, r0: float = 3.0) -> int:
    """``r = r0 * sqrt(m)`` — the birthday-paradox sizing from the paper.

    With both V's and S's tails ~uniform over the m undirected edges, the
    probability that two r-sized samples intersect is ≈ 1 - exp(-r0²), so
    r0 = 3 gives ≈ 99.99% (the paper: "r0 is computed from the birthday
    paradox to guarantee a given intersection probability").
    """
    if num_edges < 1:
        raise ValueError("num_edges must be positive")
    return max(1, int(round(r0 * np.sqrt(num_edges))))


@dataclass(frozen=True)
class SybilLimitParams:
    """Protocol parameters.

    Attributes
    ----------
    route_length:
        w — the random-route length (the knob Figure 8 sweeps).
    num_instances:
        r — number of independent instances (``None`` → r0·sqrt(m)).
    r0:
        Birthday-paradox multiplier used when ``num_instances`` is None.
    balance_base:
        b0 — the floor of the balance bound (SybilLimit uses Θ(log r)).
    balance_factor:
        a — multiplicative slack of the balance bound (paper uses 4).
    enforce_balance:
        Disable to measure the intersection condition alone.
    """

    route_length: int
    num_instances: Optional[int] = None
    r0: float = 3.0
    balance_base: Optional[float] = None
    balance_factor: float = 4.0
    enforce_balance: bool = True

    def resolve_instances(self, num_edges: int) -> int:
        if self.num_instances is not None:
            if self.num_instances < 1:
                raise ValueError("num_instances must be >= 1")
            return int(self.num_instances)
        return default_num_instances(num_edges, self.r0)

    def resolve_balance_base(self, r: int) -> float:
        if self.balance_base is not None:
            return float(self.balance_base)
        return float(max(1.0, np.log(max(r, 2))))


@dataclass
class SybilLimitOutcome:
    """Result of one verifier's admission pass.

    ``accepted[i]`` says whether ``suspects[i]`` was admitted;
    ``intersected[i]`` whether the tail sets even intersected (accepted
    implies intersected; the gap is the balance condition's rejections).
    """

    verifier: int
    suspects: np.ndarray
    accepted: np.ndarray
    intersected: np.ndarray
    route_length: int
    num_instances: int

    @property
    def admission_rate(self) -> float:
        """Fraction of suspects accepted."""
        if self.suspects.size == 0:
            return float("nan")
        return float(self.accepted.mean())

    def accepted_nodes(self) -> np.ndarray:
        return self.suspects[self.accepted]


class SybilLimit:
    """A SybilLimit deployment over a :class:`SybilScenario`.

    All nodes (honest and sybil) participate in the same route instances
    — exactly as in a real deployment, where the attacker's region is
    simply part of the graph.
    """

    def __init__(
        self,
        scenario: SybilScenario,
        params: SybilLimitParams,
        *,
        seed=None,
    ):
        self._scenario = scenario
        self._params = params
        graph = scenario.graph
        self._r = params.resolve_instances(graph.num_edges)
        rng = as_rng(seed)
        self._route_seed = int(rng.integers(2**63))
        self._tail_seed = int(rng.integers(2**63))
        # Cache route tables only when r is small enough that the memory
        # cost (r * 2m int64) stays under ~256 MB.
        cache_ok = self._r * 2 * graph.num_edges * 8 <= 256 * 2**20
        self._routes = RouteInstances(
            graph, self._r, seed=self._route_seed, cache_tables=cache_ok
        )

    @property
    def scenario(self) -> SybilScenario:
        return self._scenario

    @property
    def num_instances(self) -> int:
        return self._r

    @property
    def params(self) -> SybilLimitParams:
        return self._params

    # ------------------------------------------------------------------
    def _tail_edge_sets(self, nodes: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Undirected tail-edge ids for each node/instance/length."""
        slots = self._routes.tails_at_lengths(nodes, lengths, seed=self._tail_seed)
        return self._routes.undirected_edge_ids(slots)

    def _admit(
        self,
        verifier_tails: np.ndarray,
        suspect_tails: np.ndarray,
        suspects: np.ndarray,
        *,
        order_seed,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Run intersection + balance for one verifier at one length."""
        r = self._r
        params = self._params
        # Map each verifier tail edge -> its tail indices (loads live per tail).
        tail_index: Dict[int, List[int]] = {}
        for idx, edge in enumerate(verifier_tails):
            tail_index.setdefault(int(edge), []).append(idx)
        loads = np.zeros(r, dtype=np.int64)
        b0 = params.resolve_balance_base(r)
        a = params.balance_factor

        # Vectorised intersection screen: one isin over the whole
        # (suspects x r) tail matrix replaces a python set per suspect,
        # and the sequential balance loop below only touches the
        # suspects that actually intersect.
        verifier_edges = np.unique(verifier_tails)
        hit_mask = np.isin(suspect_tails, verifier_edges)

        accepted = np.zeros(suspects.size, dtype=bool)
        intersected = np.zeros(suspects.size, dtype=bool)
        order = as_rng(order_seed).permutation(suspects.size)
        accepted_count = 0
        for pos in order:
            if not hit_mask[pos].any():
                continue
            candidate_tails: List[int] = []
            for edge in set(int(e) for e in suspect_tails[pos][hit_mask[pos]]):
                candidate_tails.extend(tail_index.get(edge, ()))
            intersected[pos] = True
            if not params.enforce_balance:
                accepted[pos] = True
                accepted_count += 1
                continue
            best = min(candidate_tails, key=lambda t: loads[t])
            bound = max(b0, a * (accepted_count + 1) / r)
            if loads[best] + 1 > bound:
                continue
            loads[best] += 1
            accepted[pos] = True
            accepted_count += 1
        return accepted, intersected

    # ------------------------------------------------------------------
    def run(
        self,
        verifier: int,
        suspects: Optional[Sequence[int]] = None,
        *,
        seed=None,
    ) -> SybilLimitOutcome:
        """Admit ``suspects`` (default: every other node) against one verifier."""
        outcomes = self.admission_sweep(verifier, [self._params.route_length], suspects=suspects, seed=seed)
        return outcomes[0]

    def admission_sweep(
        self,
        verifier: int,
        walk_lengths: Sequence[int],
        suspects: Optional[Sequence[int]] = None,
        *,
        seed=None,
    ) -> List[SybilLimitOutcome]:
        """Admission outcomes at several route lengths (Figure 8's sweep).

        Routes are advanced incrementally, so the sweep costs one pass to
        ``max(walk_lengths)`` regardless of how many checkpoints it has.
        """
        graph = self._scenario.graph
        if suspects is None:
            suspects = np.setdiff1d(
                np.arange(graph.num_nodes, dtype=np.int64), [int(verifier)]
            )
        else:
            suspects = np.asarray(list(suspects), dtype=np.int64)
        lengths = np.asarray(sorted(set(int(w) for w in walk_lengths)), dtype=np.int64)
        rng = as_rng(seed)

        all_nodes = np.concatenate([[int(verifier)], suspects])
        tails = self._tail_edge_sets(all_nodes, lengths)  # (1 + s, r, L)
        outcomes: List[SybilLimitOutcome] = []
        for li, w in enumerate(lengths):
            verifier_tails = tails[0, :, li]
            suspect_tails = tails[1:, :, li]
            accepted, intersected = self._admit(
                verifier_tails,
                suspect_tails,
                suspects,
                order_seed=rng,
            )
            outcomes.append(
                SybilLimitOutcome(
                    verifier=int(verifier),
                    suspects=suspects,
                    accepted=accepted,
                    intersected=intersected,
                    route_length=int(w),
                    num_instances=self._r,
                )
            )
        return outcomes
