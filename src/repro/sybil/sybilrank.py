"""SybilRank (Cao, Sirivianos, Yang, Pregueiro — NSDI 2012).

The defense that turns the paper's subject on its head: where
SybilGuard/SybilLimit need walks *longer* than the mixing time,
SybilRank works by terminating a trust power-iteration *early* —
O(log n) iterations — precisely so that trust seeded at known-honest
nodes has mixed within the honest region but has **not yet** leaked
across the sparse attack cut.  Degree-normalised trust then ranks sybils
below honest nodes.

The mixing-time connection cuts both ways, which is why this belongs in
the reproduction:

* if the honest region itself mixes slower than O(log n) (the paper's
  finding for acquaintance graphs), early termination leaves honest
  communities far from the seeds under-trusted — false positives;
* if iterations run past the mixing time, trust equilibrates over the
  *whole* graph (stationary trust is degree-proportional everywhere) and
  the ranking collapses.

Both effects are measurable with :func:`ranking_quality` (AUC of honest
vs sybil ranking) as a function of the iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.runtime import ExecutionPolicy, as_policy
from ..errors import ConfigurationError, ScenarioError
from .scenario import SybilScenario

__all__ = ["SybilRankResult", "sybilrank", "ranking_quality", "recommended_iterations"]


def recommended_iterations(num_nodes: int) -> int:
    """The protocol's O(log n) early-termination point (``ceil(log2 n)``)."""
    if num_nodes < 2:
        raise ScenarioError("need at least 2 nodes")
    return int(np.ceil(np.log2(num_nodes)))


@dataclass
class SybilRankResult:
    """Degree-normalised trust scores (higher = more trusted)."""

    scores: np.ndarray
    iterations: int
    seeds: np.ndarray

    def ranking(self) -> np.ndarray:
        """Node ids from most to least trusted."""
        return np.argsort(self.scores)[::-1]

    def accept_top(self, count: int) -> np.ndarray:
        """The ``count`` most trusted nodes (the admission rule)."""
        if count < 0:
            raise ConfigurationError("count must be nonnegative")
        return self.ranking()[:count]


def sybilrank(
    scenario: SybilScenario,
    seeds: Sequence[int],
    *,
    iterations: Optional[int] = None,
    workers: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> SybilRankResult:
    """Run SybilRank's early-terminated trust propagation.

    Parameters
    ----------
    seeds:
        Known-honest trust seeds (the verifier's circle).  Total trust
        ``n`` is split evenly among them.
    iterations:
        Power-iteration count; ``None`` → ``ceil(log2 n)``.
    workers:
        Routed to the shared-memory sweep runtime
        (:meth:`~repro.core.operators.MarkovOperator.evolve_block`).
        The single aggregated trust vector is one block row, so it runs
        serially either way; multi-community deployments that propagate
        one trust vector *per seed group* (a ``(g, n)`` block) are where
        the pool pays off.  Results are identical in all cases.

    Returns
    -------
    :class:`SybilRankResult` with degree-normalised scores.
    """
    graph = scenario.graph
    n = graph.num_nodes
    seeds = np.asarray(list(seeds), dtype=np.int64)
    if seeds.size == 0:
        raise ScenarioError("need at least one trust seed")
    if np.any(seeds < 0) or np.any(seeds >= n):
        raise ScenarioError("seeds out of range")
    if np.any(graph.degrees == 0):
        raise ScenarioError("sybilrank needs a graph without isolated nodes")
    if iterations is None:
        iterations = recommended_iterations(n)
    if iterations < 0:
        raise ConfigurationError("iterations must be nonnegative")

    # Trust propagation *is* distribution evolution under the shared
    # Markov-operator layer (the trust vector sums to n, not 1, but the
    # operator is linear, so evolve without probability validation).
    # Ergodicity checks are disabled: SybilRank deliberately runs on the
    # raw scenario graph, early-terminated.
    from ..core.walks import TransitionOperator

    operator = TransitionOperator(graph, check_connected=False, check_aperiodic=False)
    trust = np.zeros(n, dtype=np.float64)
    trust[seeds] = float(n) / seeds.size
    trust = operator.evolve_block(
        trust[np.newaxis, :], int(iterations), policy=as_policy(policy, workers=workers)
    )[0]
    scores = trust / graph.degrees.astype(np.float64)
    return SybilRankResult(scores=scores, iterations=int(iterations), seeds=seeds)


def ranking_quality(result: SybilRankResult, scenario: SybilScenario) -> float:
    """AUC of the honest-above-sybil ranking (1.0 = perfect separation).

    The probability that a uniformly random honest node outranks a
    uniformly random sybil (ties count half) — the metric the SybilRank
    paper reports.
    """
    honest = result.scores[: scenario.num_honest]
    sybil = result.scores[scenario.num_honest:]
    if honest.size == 0 or sybil.size == 0:
        raise ValueError("need both honest and sybil nodes for a ranking AUC")
    # Rank-sum (Mann-Whitney) formulation, O((n+m) log(n+m)).
    combined = np.concatenate([honest, sybil])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty(combined.size, dtype=np.float64)
    # Average ranks for ties.
    sorted_vals = combined[order]
    i = 0
    while i < sorted_vals.size:
        j = i
        while j + 1 < sorted_vals.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    honest_rank_sum = ranks[: honest.size].sum()
    u_statistic = honest_rank_sum - honest.size * (honest.size + 1) / 2.0
    return float(u_statistic / (honest.size * sybil.size))
