"""Whānau — the Sybil-proof DHT whose fast-mixing evidence the paper
disputes (Section 2).

Whānau (Lesniewski-Laas & Kaashoek, NSDI 2010) builds its routing state
from random-walk samples: every node draws walks of length ``w`` and
uses the endpoints as (approximately stationary) samples of the network
to populate finger and successor tables.  The construction is correct
*exactly when* ``w`` reaches the graph's mixing time — which is the
paper's point of attack: on slow-mixing graphs the walk endpoints stay
near their source, fingers cluster, and lookups fail.

This is a single-layer, honest-network implementation (the layered-id
machinery defends against clustering *attacks*; the paper's question is
about honest *utility*, which the single layer already exhibits):

* every node owns one record, keyed by a random point on the unit ring;
* **fingers** — endpoints of ``num_fingers`` length-``w`` walks,
  deduplicated, stored sorted by key;
* **successors** — a two-phase assembly mirroring the protocol's
  recursion: walk-sampled records in the node's forward ring window,
  then a union of the sampled contacts' own runs over that window;
* **lookup(key)** — try the fingers whose keys most closely precede the
  target; succeed when a contacted finger's successor table covers the
  target key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..graph import Graph
from .._util import as_rng, check_node_index

__all__ = ["WhanauTables", "WhanauLookupStats", "build_whanau", "lookup_success_rate"]


def _walk_endpoints(graph: Graph, starts: np.ndarray, length: int, rng) -> np.ndarray:
    """Vectorised simple-random-walk endpoints for many walks at once."""
    current = starts.astype(np.int64).copy()
    indptr, indices, degrees = graph.indptr, graph.indices, graph.degrees
    for _ in range(length):
        offsets = (rng.random(current.size) * degrees[current]).astype(np.int64)
        current = indices[indptr[current] + offsets]
    return current


@dataclass
class WhanauTables:
    """Routing state of every node.

    Attributes
    ----------
    keys:
        ``keys[v]`` — the ring position of node v's record, in [0, 1).
    finger_nodes / finger_keys:
        Ragged finger tables in flat form: node v's fingers are
        ``finger_nodes[finger_ptr[v]:finger_ptr[v+1]]``, sorted by key.
    successor_keys:
        Same ragged layout; the record keys each node's successor table
        holds (sorted).
    walk_length:
        The w the tables were built with.
    """

    keys: np.ndarray
    finger_ptr: np.ndarray
    finger_nodes: np.ndarray
    finger_keys: np.ndarray
    successor_ptr: np.ndarray
    successor_keys: np.ndarray
    walk_length: int

    @property
    def num_nodes(self) -> int:
        return self.keys.size

    def fingers_of(self, node: int) -> np.ndarray:
        node = check_node_index(node, self.num_nodes)
        return self.finger_nodes[self.finger_ptr[node]:self.finger_ptr[node + 1]]

    def successors_of(self, node: int) -> np.ndarray:
        node = check_node_index(node, self.num_nodes)
        return self.successor_keys[self.successor_ptr[node]:self.successor_ptr[node + 1]]

    # ------------------------------------------------------------------
    def lookup(self, source: int, target_key: float, *, tries: int = 8) -> bool:
        """Whether ``source`` can resolve ``target_key``.

        Contacts up to ``tries`` fingers whose keys most closely precede
        the target (cyclically); succeeds when one of them holds the
        target key in its successor table.
        """
        source = check_node_index(source, self.num_nodes)
        fingers = self.fingers_of(source)
        if fingers.size == 0:
            return False
        fkeys = self.finger_keys[self.finger_ptr[source]:self.finger_ptr[source + 1]]
        # Cyclic distance from finger key forward to the target.
        forward = np.mod(target_key - fkeys, 1.0)
        order = np.argsort(forward)
        for idx in order[: max(1, tries)]:
            contact = int(fingers[idx])
            succ = self.successors_of(contact)
            pos = np.searchsorted(succ, target_key)
            if pos < succ.size and succ[pos] == target_key:
                return True
        return False


def build_whanau(
    graph: Graph,
    walk_length: int,
    *,
    num_fingers: Optional[int] = None,
    num_successors: Optional[int] = None,
    seed=None,
) -> WhanauTables:
    """Run the table-construction protocol on an honest network.

    Defaults: ``num_fingers = num_successors = ceil(3 sqrt(n))`` — the
    Θ(sqrt(n)) state per node from the Whānau paper (constants shrunk to
    keep laptop-scale runs quick).
    """
    if walk_length < 1:
        raise ValueError("walk_length must be >= 1")
    n = graph.num_nodes
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if np.any(graph.degrees == 0):
        raise ValueError("whanau tables need a graph without isolated nodes")
    rng = as_rng(seed)
    if num_fingers is None:
        num_fingers = int(np.ceil(3 * np.sqrt(n)))
    if num_successors is None:
        num_successors = int(np.ceil(3 * np.sqrt(n)))

    # Record keys: a random permutation of equally spaced ring points
    # (distinct by construction, so searchsorted-equality is exact).
    keys = rng.permutation(n).astype(np.float64) / n

    # Fingers: endpoints of num_fingers walks per node.
    starts = np.repeat(np.arange(n, dtype=np.int64), num_fingers)
    endpoints = _walk_endpoints(graph, starts, walk_length, rng).reshape(n, num_fingers)

    finger_ptr = np.zeros(n + 1, dtype=np.int64)
    finger_nodes_parts: List[np.ndarray] = []
    finger_keys_parts: List[np.ndarray] = []
    for v in range(n):
        unique = np.unique(endpoints[v])
        order = np.argsort(keys[unique])
        finger_nodes_parts.append(unique[order])
        finger_keys_parts.append(keys[unique][order])
        finger_ptr[v + 1] = finger_ptr[v] + unique.size
    finger_nodes = np.concatenate(finger_nodes_parts)
    finger_keys = np.concatenate(finger_keys_parts)

    # Successors, two-phase as in Whānau's recursive assembly.
    #
    # Phase 1 — every node samples owners by random walks and keeps the
    # records whose keys fall in its *forward window* (the ring range
    # [key(v), key(v) + num_successors/n) it is responsible for).
    #
    # Phase 2 — every node asks its sampled contacts for the parts of
    # *their* phase-1 runs that fall inside its window and unions them.
    # This squares the effective sample count (as the real protocol's
    # recursion does), so with well-mixed walks the window is covered
    # w.h.p. — while short walks keep both phases inside the local
    # community, leaving holes exactly where out-of-community owners'
    # keys land.
    window = min(1.0, 4.0 * num_successors / n)
    starts = np.repeat(np.arange(n, dtype=np.int64), num_successors)
    succ_samples = _walk_endpoints(graph, starts, walk_length, rng).reshape(n, num_successors)

    def in_window(v: int, candidate_keys: np.ndarray) -> np.ndarray:
        forward = np.mod(candidate_keys - keys[v], 1.0)
        return candidate_keys[forward < window]

    phase1: List[np.ndarray] = []
    for v in range(n):
        sampled_keys = np.unique(keys[np.unique(succ_samples[v])])
        phase1.append(np.sort(in_window(v, sampled_keys)))

    successor_ptr = np.zeros(n + 1, dtype=np.int64)
    successor_parts: List[np.ndarray] = []
    for v in range(n):
        pooled = [phase1[v]]
        for u in np.unique(succ_samples[v]):
            pooled.append(in_window(v, phase1[int(u)]))
        kept = np.unique(np.concatenate(pooled))
        successor_parts.append(kept)
        successor_ptr[v + 1] = successor_ptr[v] + kept.size
    successor_keys = np.concatenate(successor_parts)

    return WhanauTables(
        keys=keys,
        finger_ptr=finger_ptr,
        finger_nodes=finger_nodes,
        finger_keys=finger_keys,
        successor_ptr=successor_ptr,
        successor_keys=successor_keys,
        walk_length=walk_length,
    )


@dataclass(frozen=True)
class WhanauLookupStats:
    """Outcome of a lookup trial batch."""

    walk_length: int
    lookups: int
    successes: int

    @property
    def success_rate(self) -> float:
        if self.lookups == 0:
            return float("nan")
        return self.successes / self.lookups


def lookup_success_rate(
    tables: WhanauTables,
    *,
    num_lookups: int = 500,
    tries: int = 8,
    seed=None,
) -> WhanauLookupStats:
    """Random (source, target) lookups against the built tables."""
    rng = as_rng(seed)
    n = tables.num_nodes
    successes = 0
    for _ in range(num_lookups):
        source = int(rng.integers(n))
        target = int(rng.integers(n))
        if tables.lookup(source, float(tables.keys[target]), tries=tries):
            successes += 1
    return WhanauLookupStats(
        walk_length=tables.walk_length, lookups=num_lookups, successes=successes
    )
