"""Unit tests for label propagation."""

import numpy as np
import pytest

from repro.community import label_propagation
from repro.generators import planted_partition, two_community_bridge


class TestLabelPropagation:
    def test_labels_compact(self, er_medium):
        labels = label_propagation(er_medium, seed=1)
        assert labels.min() == 0
        assert np.unique(labels).size == labels.max() + 1

    def test_recovers_planted_communities(self):
        g, truth = planted_partition(3, 60, 0.4, 0.005, seed=2)
        labels = label_propagation(g, seed=3)
        # Every planted block should be (almost) label-pure.
        for block in range(3):
            block_labels = labels[truth == block]
            values, counts = np.unique(block_labels, return_counts=True)
            assert counts.max() / block_labels.size > 0.9

    def test_bridge_graph_two_communities(self):
        g, truth = two_community_bridge(60, 8, 1, seed=4)
        labels = label_propagation(g, seed=5)
        # The two sides must not share their majority label.
        side0 = np.bincount(labels[truth == 0]).argmax()
        side1 = np.bincount(labels[truth == 1]).argmax()
        assert side0 != side1

    def test_dense_graph_single_community(self, complete5):
        labels = label_propagation(complete5, seed=6)
        assert np.unique(labels).size == 1

    def test_deterministic_given_seed(self, er_medium):
        a = label_propagation(er_medium, seed=7)
        b = label_propagation(er_medium, seed=7)
        assert np.array_equal(a, b)

    def test_isolated_nodes_keep_own_label(self, triangle_plus_isolated):
        labels = label_propagation(triangle_plus_isolated, seed=8)
        assert labels.size == 5
        # The two isolated nodes keep distinct singleton communities.
        assert labels[3] != labels[4]
