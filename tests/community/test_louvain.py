"""Unit tests for Louvain community detection."""

import numpy as np
import pytest

from repro.community import label_propagation, louvain, modularity
from repro.generators import planted_partition, two_community_bridge
from repro.graph import Graph


class TestLouvain:
    def test_recovers_planted_partition(self):
        g, truth = planted_partition(4, 60, 0.35, 0.004, seed=1)
        labels = louvain(g, seed=2)
        assert int(labels.max()) + 1 == 4
        # Label-agreement up to permutation: every block is label-pure.
        for block in range(4):
            block_labels = labels[truth == block]
            _values, counts = np.unique(block_labels, return_counts=True)
            assert counts.max() / block_labels.size > 0.95

    def test_modularity_at_least_label_propagation(self):
        g, _ = planted_partition(3, 70, 0.25, 0.01, seed=3)
        q_louvain = modularity(g, louvain(g, seed=4))
        q_lp = modularity(g, label_propagation(g, seed=5))
        assert q_louvain >= q_lp - 0.02

    def test_bridge_graph_split(self):
        g, truth = two_community_bridge(60, 8, 1, seed=6)
        labels = louvain(g, seed=7)
        side0 = np.bincount(labels[truth == 0]).argmax()
        side1 = np.bincount(labels[truth == 1]).argmax()
        assert side0 != side1

    def test_complete_graph_one_community(self, complete5):
        labels = louvain(complete5, seed=8)
        assert np.unique(labels).size == 1

    def test_isolated_nodes_singletons(self, triangle_plus_isolated):
        labels = louvain(triangle_plus_isolated, seed=9)
        assert labels[3] != labels[4]
        assert labels[0] == labels[1] == labels[2]

    def test_empty_graphs(self):
        assert louvain(Graph.empty(0)).size == 0
        assert louvain(Graph.empty(4), seed=1).tolist() == [0, 1, 2, 3]

    def test_deterministic(self):
        g, _ = planted_partition(3, 40, 0.3, 0.01, seed=10)
        a = louvain(g, seed=11)
        b = louvain(g, seed=11)
        assert np.array_equal(a, b)

    def test_labels_compact(self):
        g, _ = planted_partition(5, 30, 0.4, 0.01, seed=12)
        labels = louvain(g, seed=13)
        assert labels.min() == 0
        assert np.unique(labels).size == labels.max() + 1

    def test_nontrivial_modularity_on_social_standin(self):
        from repro.datasets import load_cached

        graph = load_cached("physics1")
        labels = louvain(graph, seed=14)
        assert modularity(graph, labels) > 0.7  # strong community structure
