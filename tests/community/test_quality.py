"""Unit tests for partition quality measures."""

import numpy as np
import pytest

from repro.community import (
    community_conductances,
    modularity,
    worst_community_conductance,
)
from repro.generators import two_community_bridge


class TestModularity:
    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        from repro.generators import planted_partition
        from repro.graph.nxcompat import to_networkx

        g, labels = planted_partition(3, 40, 0.3, 0.01, seed=1)
        communities = [set(np.flatnonzero(labels == c).tolist()) for c in range(3)]
        ours = modularity(g, labels)
        theirs = nx.algorithms.community.modularity(to_networkx(g), communities)
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_single_community_zero(self, petersen):
        assert modularity(petersen, np.zeros(10, dtype=np.int64)) == pytest.approx(0.0)

    def test_good_partition_positive(self):
        g, labels = two_community_bridge(50, 6, 1, seed=2)
        assert modularity(g, labels) > 0.4

    def test_label_length_validated(self, petersen):
        with pytest.raises(ValueError):
            modularity(petersen, np.zeros(3, dtype=np.int64))

    def test_no_edges(self):
        from repro.graph import Graph

        assert modularity(Graph.empty(4), np.zeros(4, dtype=np.int64)) == 0.0


class TestConductances:
    def test_per_community_values(self):
        g, labels = two_community_bridge(50, 6, 2, seed=3)
        values = community_conductances(g, labels)
        assert set(values) == {0, 1}
        for phi in values.values():
            assert phi == pytest.approx(2 / (50 * 6 + 2), rel=0.1)

    def test_worst_is_min(self):
        g, labels = two_community_bridge(50, 6, 2, seed=4)
        assert worst_community_conductance(g, labels) == min(
            community_conductances(g, labels).values()
        )

    def test_whole_graph_label_skipped(self, petersen):
        values = community_conductances(petersen, np.zeros(10, dtype=np.int64))
        assert values == {}
        with pytest.raises(ValueError):
            worst_community_conductance(petersen, np.zeros(10, dtype=np.int64))
