"""Unit tests for spectral sweep cuts."""

import numpy as np
import pytest

from repro.errors import NotConnectedError
from repro.community import second_eigenvector, spectral_sweep_cut
from repro.core import cheeger_bounds, transition_spectrum_extremes
from repro.generators import two_community_bridge
from repro.graph import conductance_of_set


class TestSecondEigenvector:
    def test_orthogonal_to_stationary_direction(self, petersen):
        vec = second_eigenvector(petersen)
        deg = petersen.degrees.astype(float)
        # P-eigenvectors for distinct eigenvalues are D-orthogonal.
        assert abs((vec * deg).sum()) < 1e-8

    def test_signs_split_bridge_graph(self):
        g, labels = two_community_bridge(60, 6, 1, seed=1)
        vec = second_eigenvector(g)
        side = vec > np.median(vec)
        agreement = max((side == (labels == 0)).mean(), (side == (labels == 1)).mean())
        assert agreement > 0.95

    def test_disconnected_rejected(self, triangle_plus_isolated):
        with pytest.raises(NotConnectedError):
            second_eigenvector(triangle_plus_isolated)

    def test_small_graph_dense_path(self, complete5):
        vec = second_eigenvector(complete5)
        assert vec.size == 5


class TestSweepCut:
    def test_finds_planted_bottleneck(self):
        g, labels = two_community_bridge(80, 6, 2, seed=2)
        cut = spectral_sweep_cut(g)
        # The sweep must recover (almost exactly) one community.
        side_labels = labels[cut.side]
        assert cut.size == pytest.approx(80, abs=4)
        assert (side_labels == side_labels[0]).mean() > 0.95

    def test_conductance_matches_reported_side(self, bridge_graph):
        cut = spectral_sweep_cut(bridge_graph)
        assert cut.conductance == pytest.approx(
            conductance_of_set(bridge_graph, cut.side), rel=1e-9
        )

    def test_within_cheeger_bounds(self, bridge_graph):
        summary = transition_spectrum_extremes(bridge_graph)
        lo, hi = cheeger_bounds(summary.lambda2)
        cut = spectral_sweep_cut(bridge_graph)
        assert lo - 1e-9 <= cut.conductance <= hi + 1e-9

    def test_cut_edges_counted(self):
        g, _ = two_community_bridge(50, 6, 3, seed=3)
        cut = spectral_sweep_cut(g)
        assert cut.cut_edges == 3

    def test_er_graph_no_small_cut(self, er_medium):
        cut = spectral_sweep_cut(er_medium)
        # Expanders have conductance bounded away from zero.
        assert cut.conductance > 0.1
