"""Shared fixtures: canonical small graphs with known properties.

Every fixture returns a fresh object per test (graphs are immutable, but
freshness keeps accidental cross-test state impossible).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph
from repro.generators import (
    erdos_renyi_gnm,
    random_regular,
    ring_lattice,
    two_community_bridge,
)
from repro.graph import largest_connected_component


@pytest.fixture(scope="session", autouse=True)
def _isolated_dataset_cache(tmp_path_factory):
    """Point the dataset disk cache at a session-scoped temp directory so
    tests never touch (or depend on) the user's real cache."""
    import os

    cache_dir = tmp_path_factory.mktemp("repro-dataset-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def path4():
    """Path graph 0-1-2-3 (bipartite, tree)."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def cycle5():
    """5-cycle: 2-regular, non-bipartite, vertex transitive."""
    return Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])


@pytest.fixture
def cycle6():
    """6-cycle: 2-regular and bipartite (periodic plain walk)."""
    return Graph.from_edges([(i, (i + 1) % 6) for i in range(6)])


@pytest.fixture
def complete5():
    """K5: the fastest-mixing 5-node graph."""
    return Graph.from_edges([(i, j) for i in range(5) for j in range(i + 1, 5)])


@pytest.fixture
def star6():
    """Star with 5 leaves: bipartite, hub-dominated stationary mass."""
    return Graph.from_edges([(0, i) for i in range(1, 6)])


@pytest.fixture
def triangle_plus_isolated():
    """A triangle and two isolated nodes (disconnected)."""
    return Graph.from_edges([(0, 1), (1, 2), (0, 2)], num_nodes=5)


@pytest.fixture
def two_triangles_bridged():
    """Two triangles joined by one edge — the minimal bottleneck graph."""
    return Graph.from_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    )


@pytest.fixture
def petersen():
    """The Petersen graph: 3-regular, non-bipartite, vertex transitive;
    adjacency spectrum {3, 1 (x5), -2 (x4)} → walk spectrum {1, 1/3, -2/3}."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    return Graph.from_edges(outer + spokes + inner)


@pytest.fixture
def er_medium():
    """A connected ER graph, n≈400: the fast-mixing control."""
    graph = erdos_renyi_gnm(400, 2400, seed=99)
    lcc, _ = largest_connected_component(graph)
    return lcc


@pytest.fixture
def bridge_graph():
    """Two 150-node communities with 2 bridge edges: slow mixing."""
    graph, _labels = two_community_bridge(150, 6, 2, seed=7)
    return graph


@pytest.fixture
def regular_graph():
    """Random 6-regular graph on 120 nodes (uniform stationary dist)."""
    return random_regular(120, 6, seed=11)
