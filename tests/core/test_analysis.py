"""Unit tests for figure aggregation helpers."""

import numpy as np
import pytest

from repro.core import (
    PAPER_BANDS,
    PercentileBands,
    cdf_at_walk_length,
    empirical_cdf,
    measure_mixing,
    percentile_bands,
)


class TestEmpiricalCdf:
    def test_sorted_and_normalised(self):
        values, cdf = empirical_cdf(np.asarray([3.0, 1.0, 2.0]))
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert cdf.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_single_value(self):
        values, cdf = empirical_cdf(np.asarray([5.0]))
        assert cdf.tolist() == [1.0]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.asarray([]))

    def test_cdf_is_nondecreasing(self, rng):
        _values, cdf = empirical_cdf(rng.random(100))
        assert np.all(np.diff(cdf) >= 0)


class TestCdfAtWalkLength:
    def test_matches_column(self, petersen):
        m = measure_mixing(petersen, [1, 4])
        values, cdf = cdf_at_walk_length(m, 4)
        assert values.size == 10
        assert np.allclose(np.sort(m.distances[:, 1]), values)

    def test_cdf_shifts_left_with_longer_walks(self, bridge_graph):
        """Longer walks produce stochastically smaller distances."""
        m = measure_mixing(bridge_graph, [2, 50], sources=40, seed=1)
        short, _ = cdf_at_walk_length(m, 2)
        long, _ = cdf_at_walk_length(m, 50)
        assert np.median(long) < np.median(short)


class TestPercentileBands:
    def test_band_structure(self, bridge_graph):
        m = measure_mixing(bridge_graph, [1, 10, 40], sources=50, seed=2)
        bands = percentile_bands(m)
        assert set(bands.labels()) == {"best10", "median20", "worst10"}
        assert bands.band("best10").size == 3

    def test_band_ordering(self, bridge_graph):
        m = measure_mixing(bridge_graph, [5, 20], sources=60, seed=3)
        bands = percentile_bands(m)
        assert np.all(bands.band("best10") <= bands.band("median20") + 1e-12)
        assert np.all(bands.band("median20") <= bands.band("worst10") + 1e-12)

    def test_custom_bands(self, petersen):
        m = measure_mixing(petersen, [3])
        bands = percentile_bands(m, [("all", 0.0, 100.0)])
        assert bands.band("all")[0] == pytest.approx(m.distances[:, 0].mean())

    def test_unknown_band_raises(self, petersen):
        m = measure_mixing(petersen, [3])
        bands = percentile_bands(m)
        with pytest.raises(KeyError):
            bands.band("nope")

    def test_paper_bands_constant(self):
        labels = [label for label, _lo, _hi in PAPER_BANDS]
        assert labels == ["best10", "median20", "worst10"]
