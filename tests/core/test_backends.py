"""Differential-testing harness for the SpMM backend seam.

Every registered backend is driven through the same gates:

* **Golden suite** — the committed ``tests/data/golden_values.json``
  TVD curves and hitting-time estimates, re-measured under each
  backend.  Float64 backends must be *bit-for-bit* the numpy oracle
  (and hence match the goldens at ``CURVE_ATOL``); ``float32`` must
  stay inside the pinned envelope (``FLOAT32_CURVE_ATOL`` on curves,
  ``FLOAT32_TIME_SLACK`` steps on hitting times).
* **Serial equivalence** — workers 1 vs 2, processes vs threads, chunk
  boundaries: execution shape never changes a backend's answer.
* **Fault tolerance** — checkpointed sweeps resume under float64
  backends (shared fingerprints) and never serve float64 shards to a
  float32 sweep (disjoint fingerprints).
* **Operator zoo coverage** — operators with custom dynamics
  (teleport, dangling) bypass the seam by contract and are asserted
  bit-identical under *every* backend.

The non-backtracking operator is pinned against a naive dense
edge-walk reference with hypothesis property tests, and the
uniform-start estimator against hard-coded golden values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.backends as backends_mod
from repro.core import (
    DEFAULT_BACKEND,
    FLOAT32_CURVE_ATOL,
    FLOAT32_TIME_SLACK,
    ExecutionPolicy,
    MarkovOperator,
    NonBacktrackingOperator,
    SpmmBackend,
    TransitionOperator,
    available_backends,
    backend_numeric,
    estimate_mixing_time,
    get_backend,
    measure_mixing,
    non_backtracking_curves,
    non_backtracking_hitting_times,
    non_backtracking_slem,
    numba_available,
    register_backend,
    validate_backend,
)
from repro.errors import ConfigurationError
from repro.generators import erdos_renyi_gnm, ring_lattice
from repro.graph import largest_connected_component
from repro.sybil.routes import arc_sources, reverse_slots

from tests.core.test_golden_values import (
    CURVE_ATOL,
    GOLDEN_SOURCES,
    GOLDEN_WALKS,
    build_golden_graphs,
    load_fixture,
)
from tests.core.test_operators import ALL_KINDS, make_operator

ALL_BACKENDS = list(available_backends())
FLOAT64_BACKENDS = [b for b in ALL_BACKENDS if backend_numeric(b) == "float64"]
NON_DEFAULT_BACKENDS = [b for b in ALL_BACKENDS if b != DEFAULT_BACKEND]

#: Operator kinds whose step is a plain ``X @ P`` over ``_matrix`` —
#: the kinds the backend seam actually rewires.  Custom-dynamics kinds
#: (directed teleport/dangling) fall back to their own kernel.
SEAM_KINDS = [
    k
    for k in ALL_KINDS
    if type(make_operator(k))._apply_block is MarkovOperator._apply_block
]
CUSTOM_KINDS = [k for k in ALL_KINDS if k not in SEAM_KINDS]

WALKS = [1, 2, 5, 10, 20]
SOURCES = list(range(24))


def _sources_for(op) -> list:
    return SOURCES[: min(len(SOURCES), op._num_states)]


def sweep_curves(kind: str, backend: str, **policy_kwargs) -> np.ndarray:
    op = make_operator(kind)
    policy = ExecutionPolicy(backend=backend, **policy_kwargs)
    return op.variation_curves(_sources_for(op), WALKS, policy=policy)


def sweep_hitting(kind: str, backend: str, **policy_kwargs):
    op = make_operator(kind)
    policy = ExecutionPolicy(backend=backend, **policy_kwargs)
    return op.hitting_times(_sources_for(op), 0.1, max_steps=500, policy=policy)


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert DEFAULT_BACKEND == "numpy"
        assert set(ALL_BACKENDS) >= {"numpy", "tiled", "float32"}

    def test_numerics(self):
        assert backend_numeric("numpy") == "float64"
        assert backend_numeric("tiled") == "float64"
        assert backend_numeric("float32") == "float32"

    def test_get_backend_unknown_raises_with_listing(self):
        with pytest.raises(ConfigurationError, match="numpy"):
            get_backend("does-not-exist")

    def test_validate_backend_rejects_non_strings(self):
        with pytest.raises(ConfigurationError):
            validate_backend(42)

    def test_register_rejects_duplicates_and_bad_numeric(self):
        numpy_backend = get_backend("numpy")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend(numpy_backend)
        with pytest.raises(ConfigurationError):
            register_backend(
                SpmmBackend(
                    name="bad-numeric",
                    numeric="float16",
                    factory=numpy_backend.factory,
                    description="",
                )
            )
        with pytest.raises(ConfigurationError):
            register_backend("not a backend")

    def test_register_and_replace_roundtrip(self):
        numpy_backend = get_backend("numpy")
        probe = SpmmBackend(
            name="_harness_probe",
            numeric="float64",
            factory=numpy_backend.factory,
            description="test-only clone of numpy",
        )
        try:
            register_backend(probe)
            assert "_harness_probe" in available_backends()
            # replace=True allows re-registration under the same name.
            register_backend(probe, replace=True)
            op = make_operator("plain")
            got = op.variation_curves(
                SOURCES, WALKS, policy=ExecutionPolicy(backend="_harness_probe")
            )
            want = op.variation_curves(SOURCES, WALKS)
            assert np.array_equal(got, want)
        finally:
            backends_mod._REGISTRY.pop("_harness_probe", None)

    def test_policy_accepts_registered_rejects_unknown(self):
        for name in ALL_BACKENDS:
            assert ExecutionPolicy(backend=name).backend == name
        with pytest.raises(ConfigurationError, match="unknown SpMM backend"):
            ExecutionPolicy(backend="bogus")

    def test_numba_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMBA", "0")
        assert numba_available() is False

    def test_numba_absence_is_gated_not_fatal(self):
        # The container has no numba; the tiled backend must still
        # answer (pure-numpy stripe kernel) rather than ImportError.
        got = sweep_curves("plain", "tiled")
        want = sweep_curves("plain", "numpy")
        assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# Golden suite under every backend
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def golden_graphs():
    return build_golden_graphs()


@pytest.fixture(scope="module")
def golden_fixture():
    return load_fixture()


class TestGoldenDifferential:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("name", ["karate", "petersen", "bridge", "er80"])
    def test_tvd_curves_against_committed_goldens(
        self, golden_graphs, golden_fixture, name, backend
    ):
        golden = golden_fixture["graphs"][name]["tvd_curves"]
        want = np.asarray(golden["distances"], dtype=np.float64)
        got = measure_mixing(
            golden_graphs[name],
            golden["walk_lengths"],
            sources=golden["sources"],
            policy=ExecutionPolicy(backend=backend),
        ).distances
        atol = (
            CURVE_ATOL
            if backend_numeric(backend) == "float64"
            else FLOAT32_CURVE_ATOL
        )
        worst = np.abs(got - want).max()
        assert worst <= atol, (
            f"{name}/{backend}: drifted {worst:.3e} from golden (> {atol})"
        )

    @pytest.mark.parametrize("backend", FLOAT64_BACKENDS)
    @pytest.mark.parametrize("name", ["karate", "petersen", "bridge", "er80"])
    def test_float64_backends_bit_identical_to_oracle(
        self, golden_graphs, name, backend
    ):
        graph = golden_graphs[name]
        oracle = measure_mixing(graph, GOLDEN_WALKS, sources=GOLDEN_SOURCES)
        got = measure_mixing(
            graph,
            GOLDEN_WALKS,
            sources=GOLDEN_SOURCES,
            policy=ExecutionPolicy(backend=backend),
        )
        assert np.array_equal(got.distances, oracle.distances)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("name", ["karate", "er80"])
    def test_hitting_estimates_against_goldens(
        self, golden_graphs, golden_fixture, name, backend
    ):
        golden = golden_fixture["graphs"][name]["estimate"]
        estimate = estimate_mixing_time(
            golden_graphs[name],
            golden["epsilon"],
            sources=GOLDEN_SOURCES,
            max_steps=500,
            policy=ExecutionPolicy(backend=backend),
        )
        want = np.asarray(golden["per_source"], dtype=np.int64)
        got = estimate.per_source
        if backend_numeric(backend) == "float64":
            assert np.array_equal(got, want)
            assert estimate.walk_length == golden["walk_length"]
        else:
            assert np.all(np.abs(got - want) <= FLOAT32_TIME_SLACK)

    @pytest.mark.parametrize("backend", NON_DEFAULT_BACKENDS)
    @pytest.mark.parametrize("kind", SEAM_KINDS)
    def test_operator_zoo_seam_kinds(self, kind, backend):
        oracle = sweep_curves(kind, "numpy")
        got = sweep_curves(kind, backend)
        if backend_numeric(backend) == "float64":
            assert np.array_equal(got, oracle)
        else:
            worst = np.abs(got - oracle).max()
            assert worst <= FLOAT32_CURVE_ATOL, (
                f"{kind}/{backend}: float32 envelope violated ({worst:.3e})"
            )

    @pytest.mark.parametrize("backend", NON_DEFAULT_BACKENDS)
    @pytest.mark.parametrize("kind", CUSTOM_KINDS)
    def test_operator_zoo_custom_kinds_bypass_seam(self, kind, backend):
        # Custom dynamics (teleport, dangling mass) keep their own
        # kernel under every backend — bit-identical, even float32.
        oracle = sweep_curves(kind, "numpy")
        got = sweep_curves(kind, backend)
        assert np.array_equal(got, oracle)

    @pytest.mark.parametrize("backend", NON_DEFAULT_BACKENDS)
    @pytest.mark.parametrize("kind", SEAM_KINDS)
    def test_hitting_times_envelope(self, kind, backend):
        oracle = sweep_hitting(kind, "numpy")
        got = sweep_hitting(kind, backend)
        if backend_numeric(backend) == "float64":
            assert np.array_equal(got.times, oracle.times)
            assert np.array_equal(got.final_distances, oracle.final_distances)
        else:
            assert np.all(np.abs(got.times - oracle.times) <= FLOAT32_TIME_SLACK)
            converged_same = (got.times >= 0) == (oracle.times >= 0)
            assert np.all(converged_same)


# ----------------------------------------------------------------------
# Serial equivalence: workers / execution mode never change answers
# ----------------------------------------------------------------------
needs_pool = pytest.mark.skipif(
    not __import__("repro.core.parallel", fromlist=["parallel_backend_available"])
    .parallel_backend_available(),
    reason="process pool unavailable",
)


class TestSerialEquivalence:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_chunk_boundaries_neutral(self, backend):
        whole = sweep_curves("plain", backend)
        chunked = sweep_curves("plain", backend, block_size=5)
        assert np.array_equal(whole, chunked)

    @needs_pool
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_process_pool_identity(self, backend):
        serial = sweep_curves("plain", backend)
        pooled = sweep_curves("plain", backend, workers=2)
        assert np.array_equal(serial, pooled)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_thread_pool_identity(self, backend):
        serial = sweep_curves("plain", backend)
        threaded = sweep_curves("plain", backend, workers=2, execution="threads")
        assert np.array_equal(serial, threaded)

    @needs_pool
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_threads_equal_processes(self, backend):
        threads = sweep_hitting("plain", backend, workers=2, execution="threads")
        procs = sweep_hitting("plain", backend, workers=2)
        assert np.array_equal(threads.times, procs.times)
        assert np.array_equal(threads.final_distances, procs.final_distances)

    @pytest.mark.parametrize("kind", ["weighted", "lazy"])
    def test_thread_pool_identity_other_operators(self, kind):
        serial = sweep_curves(kind, "tiled")
        threaded = sweep_curves(kind, "tiled", workers=2, execution="threads")
        assert np.array_equal(serial, threaded)


# ----------------------------------------------------------------------
# Fault tolerance: checkpoints compose with the backend seam
# ----------------------------------------------------------------------
class TestFaultTolerance:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_checkpoint_resume_identity(self, backend, tmp_path):
        policy = ExecutionPolicy(
            backend=backend, checkpoint_dir=str(tmp_path), block_size=5
        )
        first = sweep_curves("plain", backend, checkpoint_dir=str(tmp_path), block_size=5)
        # Second run resumes from completed shards — identical output.
        second = sweep_curves("plain", backend, checkpoint_dir=str(tmp_path), block_size=5)
        assert np.array_equal(first, second)
        assert policy.checkpoint_dir is not None  # sanity: resumable path taken

    def test_float64_backends_share_sweep_fingerprints(self):
        from repro.core.parallel import _operator_fingerprint

        op = make_operator("plain")
        ref = op.stationary()
        args = (
            "curves", "plain", op._matrix, {}, ref,
            np.asarray(SOURCES), np.asarray(WALKS),
        )
        base = _operator_fingerprint(*args, backend="numpy")
        assert _operator_fingerprint(*args, backend="tiled") == base
        assert _operator_fingerprint(*args, backend="float32") != base

    def test_float32_checkpoints_not_served_to_each_other(self, tmp_path):
        # A float64 sweep leaves shards behind; a float32 sweep over the
        # same checkpoint dir must recompute (different fingerprint) and
        # land inside its envelope rather than replaying float64 rows.
        f64 = sweep_curves("plain", "numpy", checkpoint_dir=str(tmp_path))
        f32 = sweep_curves("plain", "float32", checkpoint_dir=str(tmp_path))
        f32_clean = sweep_curves("plain", "float32")
        assert np.array_equal(f32, f32_clean)
        assert np.abs(f32 - f64).max() <= FLOAT32_CURVE_ATOL


# ----------------------------------------------------------------------
# Uniform-start estimator: pinned values
# ----------------------------------------------------------------------
class TestUniformStart:
    def test_uniform_start_equals_manual_distribution_sweep(self, golden_graphs):
        graph = golden_graphs["er80"]
        op = TransitionOperator(graph)
        uniform = np.full((1, graph.num_nodes), 1.0 / graph.num_nodes)
        manual = op.distribution_variation_curves(uniform, GOLDEN_WALKS)
        measured = measure_mixing(graph, GOLDEN_WALKS, mode="uniform_start")
        assert np.array_equal(measured.distances, manual)
        assert measured.sources.tolist() == [-1]

    def test_uniform_start_pinned_karate(self, golden_graphs):
        # Hard-pinned values: the uniform start on karate at the golden
        # walk checkpoints (deterministic float64 evolution).
        measured = measure_mixing(
            golden_graphs["karate"], [1, 2, 5, 10], mode="uniform_start"
        )
        want = np.array(
            [[0.17748110933664568, 0.13283416326560796,
              0.046782112960445384, 0.009145457865596094]]
        )
        assert np.allclose(measured.distances, want, atol=1e-12, rtol=0.0)

    def test_uniform_start_below_point_mass_worst_case(self, golden_graphs):
        # The uniform start is a convex mixture of point masses, so its
        # TVD curve can never exceed the worst-case point-mass curve.
        graph = golden_graphs["er80"]
        pm = measure_mixing(graph, GOLDEN_WALKS, sources=None)
        us = measure_mixing(graph, GOLDEN_WALKS, mode="uniform_start")
        assert np.all(us.distances[0] <= pm.worst_case() + 1e-15)

    def test_uniform_start_estimate_and_backends(self, golden_graphs):
        graph = golden_graphs["er80"]
        est = estimate_mixing_time(graph, 0.1, mode="uniform_start")
        assert est.sources.tolist() == [-1]
        assert est.per_source.shape == (1,)
        assert est.walk_length >= 0
        for backend in FLOAT64_BACKENDS:
            again = estimate_mixing_time(
                graph, 0.1, mode="uniform_start",
                policy=ExecutionPolicy(backend=backend),
            )
            assert again.walk_length == est.walk_length

    def test_unknown_mode_rejected(self, golden_graphs):
        with pytest.raises(ConfigurationError, match="unknown measurement mode"):
            measure_mixing(golden_graphs["karate"], [1, 2], mode="warp")
        with pytest.raises(ConfigurationError):
            estimate_mixing_time(golden_graphs["karate"], 0.1, mode="warp")


# ----------------------------------------------------------------------
# Non-backtracking operator: hypothesis vs naive edge-walk reference
# ----------------------------------------------------------------------
def _naive_hashimoto(graph) -> np.ndarray:
    """Dense reference built arc by arc straight from the definition."""
    src = arc_sources(graph)
    dst = graph.indices
    rev = reverse_slots(graph)
    num_slots = src.size
    out = np.zeros((num_slots, num_slots))
    for e in range(num_slots):
        v = int(dst[e])
        slots = list(range(int(graph.indptr[v]), int(graph.indptr[v + 1])))
        allowed = [f for f in slots if f != rev[e]]
        if not allowed:  # leaf: forced backtrack
            allowed = [int(rev[e])]
        for f in allowed:
            out[e, f] = 1.0 / len(allowed)
    return out


@st.composite
def connected_graphs(draw):
    n = draw(st.integers(min_value=4, max_value=40))
    extra = draw(st.integers(min_value=0, max_value=3 * n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    g = erdos_renyi_gnm(n, min(n - 1 + extra, n * (n - 1) // 2), seed=seed)
    g, _ = largest_connected_component(g)
    return g


class TestNonBacktrackingProperties:
    @settings(max_examples=25, deadline=None)
    @given(connected_graphs())
    def test_matrix_matches_naive_reference(self, graph):
        op = NonBacktrackingOperator(graph)
        assert np.array_equal(op._matrix.toarray(), _naive_hashimoto(graph))

    @settings(max_examples=25, deadline=None)
    @given(connected_graphs())
    def test_doubly_stochastic(self, graph):
        m = NonBacktrackingOperator(graph)._matrix
        assert np.allclose(np.asarray(m.sum(axis=1)).ravel(), 1.0)
        assert np.allclose(np.asarray(m.sum(axis=0)).ravel(), 1.0)

    @settings(max_examples=15, deadline=None)
    @given(connected_graphs(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_step_matches_dense_walk(self, graph, seed):
        op = NonBacktrackingOperator(graph)
        dense = _naive_hashimoto(graph)
        rng = np.random.default_rng(seed)
        x = rng.random((3, op.num_arcs))
        x /= x.sum(axis=1, keepdims=True)
        for _ in range(3):
            want = x @ dense
            x = op._apply_block(x)
            assert np.allclose(x, want, atol=1e-12, rtol=0.0)

    @settings(max_examples=25, deadline=None)
    @given(connected_graphs())
    def test_uniform_arc_law_projects_to_degree_distribution(self, graph):
        op = NonBacktrackingOperator(graph)
        uniform = np.full((1, op.num_arcs), 1.0 / op.num_arcs)
        node = op.project_to_nodes(uniform)[0]
        assert np.allclose(node, op.node_stationary(), atol=1e-14)
        # Stationarity: one step preserves the uniform arc law.
        stepped = op._apply_block(uniform)
        assert np.allclose(stepped, uniform, atol=1e-14)

    @settings(max_examples=10, deadline=None)
    @given(connected_graphs())
    def test_start_block_rows_are_distributions(self, graph):
        op = NonBacktrackingOperator(graph)
        sources = np.arange(min(5, graph.num_nodes))
        block = op.start_block(sources)
        assert np.allclose(block.sum(axis=1), 1.0)
        assert op.project_to_nodes(block).shape == (sources.size, graph.num_nodes)


class TestNonBacktrackingPinned:
    def test_pinned_karate_curves(self, golden_graphs):
        got = non_backtracking_curves(golden_graphs["karate"], [0, 33], [1, 2, 5, 10])
        want = np.array([
            [0.38727297008547007, 0.2776939567955193,
             0.11634867738398583, 0.03608320964059247],
            [0.4740367475661593, 0.23808821624998094,
             0.1286280040586777, 0.03091567886173582],
        ])
        assert np.allclose(got, want, atol=1e-12, rtol=0.0)

    def test_pinned_karate_hitting_times(self, golden_graphs):
        ht = non_backtracking_hitting_times(
            golden_graphs["karate"], GOLDEN_SOURCES, 0.2, max_steps=500
        )
        assert ht.times.tolist() == [3, 3, 2, 3, 7, 2]

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_backends_apply_to_arc_space(self, golden_graphs, backend):
        graph = golden_graphs["er80"]
        oracle = non_backtracking_curves(graph, GOLDEN_SOURCES, GOLDEN_WALKS)
        got = non_backtracking_curves(
            graph, GOLDEN_SOURCES, GOLDEN_WALKS,
            policy=ExecutionPolicy(backend=backend),
        )
        if backend_numeric(backend) == "float64":
            assert np.array_equal(got, oracle)
        else:
            assert np.abs(got - oracle).max() <= FLOAT32_CURVE_ATOL

    def test_mode_plumbing_through_measure_mixing(self, golden_graphs):
        graph = golden_graphs["er80"]
        direct = non_backtracking_curves(graph, GOLDEN_SOURCES, GOLDEN_WALKS)
        measured = measure_mixing(
            graph, GOLDEN_WALKS, sources=GOLDEN_SOURCES, mode="non_backtracking"
        )
        assert np.array_equal(measured.distances, direct)
        est = estimate_mixing_time(
            graph, 0.2, sources=GOLDEN_SOURCES, max_steps=500,
            mode="non_backtracking",
        )
        direct_ht = non_backtracking_hitting_times(
            graph, GOLDEN_SOURCES, 0.2, max_steps=500
        )
        assert np.array_equal(est.per_source, direct_ht.times)

    def test_laziness_rejected(self, golden_graphs):
        with pytest.raises(ConfigurationError, match="laziness"):
            measure_mixing(
                golden_graphs["karate"], [1, 2],
                mode="non_backtracking", laziness=0.5,
            )

    def test_cycle_never_mixes(self):
        # On a pure cycle the Hashimoto chain is a rotation: nothing
        # converges and the NB SLEM saturates at 1.
        cycle = ring_lattice(12, 2)
        ht = non_backtracking_hitting_times(cycle, [0], 0.2, max_steps=50)
        assert ht.times.tolist() == [-1]
        assert non_backtracking_slem(cycle, method="dense") == pytest.approx(1.0)

    def test_nb_slem_sparse_matches_dense(self, golden_graphs):
        graph = golden_graphs["er80"]
        sparse = non_backtracking_slem(graph)
        dense = non_backtracking_slem(graph, method="dense")
        assert sparse == pytest.approx(dense, abs=1e-6)
        assert 0.0 <= sparse <= 1.0

    def test_nb_beats_simple_walk_on_expander(self, golden_graphs):
        # The acceptance headline in miniature: on the ER golden graph
        # the non-backtracking estimator converges no slower than the
        # simple walk for every golden source.
        graph = golden_graphs["er80"]
        nb = non_backtracking_hitting_times(
            graph, GOLDEN_SOURCES, 0.2, max_steps=500
        )
        sw = TransitionOperator(graph).hitting_times(
            GOLDEN_SOURCES, 0.2, max_steps=500
        )
        assert nb.times.mean() <= sw.times.mean()
