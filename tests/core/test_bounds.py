"""Unit tests for equation (4) mixing-time bounds."""

import numpy as np
import pytest

from repro.core import (
    BoundCurve,
    epsilon_for_walk_length,
    fast_mixing_walk_length,
    lower_bound_curve,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
    upper_bound_curve,
)


class TestLowerBound:
    def test_known_value(self):
        # mu=0.9, eps=0.1: (0.9 / 0.2) * ln(5).
        assert mixing_time_lower_bound(0.9, 0.1) == pytest.approx(4.5 * np.log(5))

    def test_monotone_in_mu(self):
        values = [mixing_time_lower_bound(mu, 0.1) for mu in (0.5, 0.9, 0.99, 0.999)]
        assert values == sorted(values)
        assert values[-1] > 100 * values[0] / 10

    def test_monotone_in_eps(self):
        assert mixing_time_lower_bound(0.99, 0.01) > mixing_time_lower_bound(0.99, 0.1)

    def test_vacuous_at_large_eps(self):
        # ln(1/2eps) <= 0 for eps >= 0.5, so the bound clamps to zero.
        assert mixing_time_lower_bound(0.9, 0.6) == 0.0
        assert mixing_time_lower_bound(0.9, 0.49) > 0.0

    def test_mu_one_is_infinite(self):
        assert mixing_time_lower_bound(1.0, 0.1) == float("inf")

    def test_mu_zero(self):
        assert mixing_time_lower_bound(0.0, 0.1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mixing_time_lower_bound(1.5, 0.1)
        with pytest.raises(ValueError):
            mixing_time_lower_bound(0.9, 0.0)
        with pytest.raises(ValueError):
            mixing_time_lower_bound(0.9, 1.0)


class TestUpperBound:
    def test_known_value(self):
        expected = (np.log(100) + np.log(10)) / 0.1
        assert mixing_time_upper_bound(0.9, 0.1, 100) == pytest.approx(expected)

    def test_upper_above_lower(self):
        for mu in (0.5, 0.9, 0.99):
            for eps in (0.01, 0.1):
                assert mixing_time_upper_bound(mu, eps, 1000) >= mixing_time_lower_bound(mu, eps)

    def test_validation(self):
        with pytest.raises(ValueError):
            mixing_time_upper_bound(0.9, 0.1, 0)

    def test_mu_one_infinite(self):
        assert mixing_time_upper_bound(1.0, 0.1, 100) == float("inf")


class TestCurves:
    def test_lower_curve_shape(self):
        curve = lower_bound_curve(0.99, points=32, label="x")
        assert curve.epsilons.size == 32
        assert curve.label == "x"
        # Walk length decreases as epsilon grows.
        order = np.argsort(curve.epsilons)
        assert np.all(np.diff(curve.lengths[order]) <= 0)

    def test_upper_curve(self):
        curve = upper_bound_curve(0.99, 500, points=16)
        assert np.all(curve.lengths > 0)

    def test_length_at_interpolates(self):
        curve = lower_bound_curve(0.99, points=64)
        direct = mixing_time_lower_bound(0.99, 0.05)
        assert curve.length_at(0.05) == pytest.approx(direct, rel=1e-3)

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            BoundCurve(epsilons=np.asarray([0.1, 0.2]), lengths=np.asarray([1.0]))


class TestInversion:
    def test_epsilon_for_walk_length_roundtrip(self):
        mu = 0.995
        for eps in (0.2, 0.05, 0.001):
            t = mixing_time_lower_bound(mu, eps)
            assert epsilon_for_walk_length(mu, t) == pytest.approx(eps, rel=1e-9)

    def test_zero_walk(self):
        assert epsilon_for_walk_length(0.9, 0) == pytest.approx(0.5)

    def test_decreasing_in_t(self):
        values = [epsilon_for_walk_length(0.99, t) for t in (0, 10, 100, 1000)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            epsilon_for_walk_length(0.9, -1)


class TestFastMixingYardstick:
    def test_log_n(self):
        assert fast_mixing_walk_length(1000) == pytest.approx(np.log(1000))
        assert fast_mixing_walk_length(1000, constant=2) == pytest.approx(2 * np.log(1000))

    def test_sybil_literature_scale(self):
        # For n ~ 1e6 the O(log n) yardstick is 10-15: the walk lengths
        # SybilGuard/SybilLimit used.
        assert 10 <= fast_mixing_walk_length(1_000_000) <= 15

    def test_validation(self):
        with pytest.raises(ValueError):
            fast_mixing_walk_length(0)
