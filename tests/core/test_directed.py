"""Unit tests for directed-walk mixing machinery."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, NotConnectedError
from repro.graph import DiGraph
from repro.core import (
    DirectedTransitionOperator,
    directed_second_eigenvalue_modulus,
    directed_variation_curve,
)


@pytest.fixture
def strongly_connected_digraph():
    """A directed expander-ish graph: cycle + chords (aperiodic)."""
    n = 30
    arcs = [(i, (i + 1) % n) for i in range(n)]
    arcs += [(i, (i + 2) % n) for i in range(n)]  # even shift: aperiodic
    arcs += [(i, (i + 7) % n) for i in range(n)]
    return DiGraph.from_edges(arcs)


@pytest.fixture
def directed_cycle():
    return DiGraph.from_edges([(i, (i + 1) % 6) for i in range(6)])


class TestOperator:
    def test_step_preserves_mass(self, strongly_connected_digraph):
        op = DirectedTransitionOperator(strongly_connected_digraph)
        x = op.point_mass(0)
        for _ in range(5):
            x = op.step(x)
            assert x.sum() == pytest.approx(1.0)
            assert x.min() >= 0

    def test_stationary_is_fixed_point(self, strongly_connected_digraph):
        op = DirectedTransitionOperator(strongly_connected_digraph)
        pi = op.stationary()
        assert np.allclose(op.step(pi), pi, atol=1e-10)

    def test_stationary_not_degree_proportional(self):
        """Unlike undirected walks, directed stationary mass is not a
        simple out-degree ratio."""
        g = DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])
        op = DirectedTransitionOperator(g)
        pi = op.stationary()
        out = g.out_degrees / g.out_degrees.sum()
        assert not np.allclose(pi, out, atol=1e-3)

    def test_pure_walk_rejects_dangling(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])  # node 2 dangles
        with pytest.raises(NotConnectedError, match="dangling"):
            DirectedTransitionOperator(g)

    def test_pure_walk_rejects_reducible(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0), (2, 3), (3, 2)])
        # strongly connected; now a genuinely reducible one:
        reducible = DiGraph.from_edges([(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)])
        with pytest.raises(NotConnectedError, match="strongly connected"):
            DirectedTransitionOperator(reducible)

    def test_teleport_repairs_dangling(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        op = DirectedTransitionOperator(g, damping=0.85)
        pi = op.stationary()
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi > 0)

    def test_periodic_pure_walk_never_mixes_from_point_mass(self, directed_cycle):
        # The uniform distribution is invariant even for this periodic
        # chain (so stationary() finds it), but a point mass cycles
        # forever at TVD = 5/6 — the ergodicity failure shows up in the
        # variation curve, not the fixed point.
        op = DirectedTransitionOperator(directed_cycle)
        assert np.allclose(op.stationary(max_iter=500), 1 / 6)
        curve = directed_variation_curve(directed_cycle, 0, 30)
        assert curve[-1] == pytest.approx(5 / 6)

    def test_teleport_fixes_periodicity(self, directed_cycle):
        op = DirectedTransitionOperator(directed_cycle, damping=0.9)
        pi = op.stationary()
        # By symmetry the stationary distribution is uniform.
        assert np.allclose(pi, 1 / 6, atol=1e-9)

    def test_damping_validation(self, directed_cycle):
        with pytest.raises(ValueError):
            DirectedTransitionOperator(directed_cycle, damping=0.0)
        with pytest.raises(ValueError):
            DirectedTransitionOperator(directed_cycle, damping=1.5)

    def test_evolve_matches_steps(self, strongly_connected_digraph):
        op = DirectedTransitionOperator(strongly_connected_digraph)
        x = op.point_mass(3)
        manual = x
        for _ in range(4):
            manual = op.step(manual)
        assert np.allclose(op.evolve(x, 4), manual)


class TestSpectrumAndCurves:
    def test_second_modulus_below_one(self, strongly_connected_digraph):
        mod = directed_second_eigenvalue_modulus(strongly_connected_digraph)
        assert 0.0 <= mod < 1.0

    def test_undirected_graph_matches_slem(self, petersen):
        """On a symmetrised digraph the directed machinery must agree
        with the undirected SLEM."""
        from repro.core import slem

        d = DiGraph.from_undirected(petersen)
        assert directed_second_eigenvalue_modulus(d) == pytest.approx(
            slem(petersen), abs=1e-8
        )

    def test_teleport_scales_spectrum(self, strongly_connected_digraph):
        pure = directed_second_eigenvalue_modulus(strongly_connected_digraph)
        damped = directed_second_eigenvalue_modulus(
            strongly_connected_digraph, damping=0.5
        )
        assert damped == pytest.approx(0.5 * pure, abs=1e-6)

    def test_variation_curve_converges(self, strongly_connected_digraph):
        curve = directed_variation_curve(strongly_connected_digraph, 0, 80)
        assert curve[0] > 0.9
        assert curve[-1] < 0.01
        assert curve.size == 81

    def test_variation_curve_with_teleport(self, directed_cycle):
        curve = directed_variation_curve(directed_cycle, 0, 60, damping=0.8)
        assert curve[-1] < 0.05
