"""Unit tests for distribution distances."""

import numpy as np
import pytest

from repro.core import (
    hellinger_distance,
    kl_divergence,
    l2_distance,
    separation_distance,
    total_variation_distance,
)


def uniform(n):
    return np.full(n, 1.0 / n)


def point(n, i):
    out = np.zeros(n)
    out[i] = 1.0
    return out


class TestTotalVariation:
    def test_identical_is_zero(self):
        assert total_variation_distance(uniform(4), uniform(4)) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation_distance(point(4, 0), point(4, 3)) == 1.0

    def test_known_value(self):
        p = np.asarray([0.5, 0.5, 0.0])
        q = np.asarray([0.25, 0.25, 0.5])
        assert total_variation_distance(p, q) == pytest.approx(0.5)

    def test_point_vs_uniform(self):
        # TVD(delta_0, uniform_n) = 1 - 1/n.
        for n in (2, 5, 10):
            assert total_variation_distance(point(n, 0), uniform(n)) == pytest.approx(1 - 1 / n)

    def test_symmetry(self):
        p = np.asarray([0.7, 0.2, 0.1])
        q = np.asarray([0.1, 0.3, 0.6])
        assert total_variation_distance(p, q) == total_variation_distance(q, p)

    def test_validation_rejects_non_distribution(self):
        with pytest.raises(ValueError):
            total_variation_distance(np.asarray([0.5, 0.4]), uniform(2))
        with pytest.raises(ValueError):
            total_variation_distance(np.asarray([1.5, -0.5]), uniform(2))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            total_variation_distance(uniform(3), uniform(4))


class TestSeparation:
    def test_identical_is_zero(self):
        assert separation_distance(uniform(4), uniform(4)) == 0.0

    def test_upper_bounds_tv(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            p = rng.dirichlet(np.ones(6))
            q = rng.dirichlet(np.ones(6))
            assert separation_distance(p, q) >= total_variation_distance(p, q) - 1e-12

    def test_escaping_support_is_one(self):
        p = np.asarray([0.5, 0.5, 0.0])
        q = np.asarray([1.0, 0.0, 0.0])
        assert separation_distance(p, q) == 1.0

    def test_missing_mass(self):
        p = np.asarray([1.0, 0.0])
        q = np.asarray([0.5, 0.5])
        assert separation_distance(p, q) == pytest.approx(1.0)

    def test_not_symmetric(self):
        p = np.asarray([0.9, 0.1])
        q = np.asarray([0.5, 0.5])
        assert separation_distance(p, q) != separation_distance(q, p)


class TestOtherDistances:
    def test_l2(self):
        assert l2_distance(point(2, 0), point(2, 1)) == pytest.approx(np.sqrt(2))

    def test_kl_zero_for_identical(self):
        assert kl_divergence(uniform(5), uniform(5)) == pytest.approx(0.0)

    def test_kl_infinite_outside_support(self):
        assert kl_divergence(point(3, 0), np.asarray([0.0, 0.5, 0.5])) == float("inf")

    def test_kl_known_value(self):
        p = np.asarray([0.5, 0.5])
        q = np.asarray([0.25, 0.75])
        expected = 0.5 * np.log(2) + 0.5 * np.log(2 / 3)
        assert kl_divergence(p, q) == pytest.approx(expected)

    def test_hellinger_bounds(self):
        assert hellinger_distance(uniform(3), uniform(3)) == 0.0
        assert hellinger_distance(point(3, 0), point(3, 1)) == pytest.approx(1.0)

    def test_pinsker_inequality(self):
        # TV <= sqrt(KL / 2) for all distribution pairs with support match.
        rng = np.random.default_rng(1)
        for _ in range(20):
            p = rng.dirichlet(np.ones(5))
            q = rng.dirichlet(np.ones(5))
            tv = total_variation_distance(p, q)
            kl = kl_divergence(p, q)
            assert tv <= np.sqrt(kl / 2) + 1e-9
