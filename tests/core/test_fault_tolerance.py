"""Crash/timeout/interrupt recovery for the fault-tolerant runtime.

These tests exercise the pool path end-to-end through the *public*
APIs (``variation_curves``, ``hitting_times``, route tails) with faults
injected into pool workers via the ``REPRO_FAULT_INJECT`` environment
hooks (see :mod:`repro.core.runtime`), and pin the headline contract:

* a SIGKILLed worker, a straggling shard, or a worker exception is
  recovered by retry — and when retries are exhausted, by in-process
  serial degradation — with output **bit-identical** to the serial path;
* an interrupted checkpointed sweep resumes from disk, recomputing only
  the missing shards, with output bit-identical to an uninterrupted
  run — including when the resume happens at a different worker count;
* a corrupted checkpoint raises
  :class:`~repro.errors.CheckpointCorruption` instead of producing
  silently wrong numbers.

Everything here is skipped where the fork + shared-memory backend is
unavailable (the runtime is always serial there, so there is nothing to
recover from).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.runtime as runtime
from repro.core import parallel_backend_available
from repro.core.runtime import ExecutionPolicy
from repro.errors import CheckpointCorruption, RuntimeFailure
from repro.obs import OBS
from repro.sybil import RouteInstances

from tests.core.test_operators import ALL_KINDS, make_operator

needs_pool = pytest.mark.skipif(
    not parallel_backend_available(),
    reason="fork + shared-memory backend unavailable; runtime is serial here",
)

WALKS = [0, 1, 3, 7, 12]


@pytest.fixture(autouse=True)
def _fast_backoff(monkeypatch):
    """Retries should not sleep in the test suite."""
    monkeypatch.setattr(runtime, "_BACKOFF_BASE", 0.0)


def _inject(monkeypatch, tmp_path, spec, *, once=True):
    monkeypatch.setenv("REPRO_FAULT_INJECT", spec)
    if once:
        monkeypatch.setenv("REPRO_FAULT_INJECT_STATE", str(tmp_path / "claim"))
    else:
        monkeypatch.delenv("REPRO_FAULT_INJECT_STATE", raising=False)


def _clear_injection(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    monkeypatch.delenv("REPRO_FAULT_INJECT_STATE", raising=False)


def _sources(op, count=12):
    return np.arange(count) % op.num_states


# ----------------------------------------------------------------------
# Worker crash (SIGKILL), straggler timeout, worker exception
# ----------------------------------------------------------------------
@needs_pool
class TestCrashRecovery:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_sigkilled_worker_recovers_bit_identical(
        self, kind, monkeypatch, tmp_path
    ):
        op = make_operator(kind)
        sources = _sources(op)
        serial = op.variation_curves(sources, WALKS)
        _inject(monkeypatch, tmp_path, "crash:0", once=True)
        recovered = op.variation_curves(
            sources, WALKS, policy=ExecutionPolicy(workers=2)
        )
        assert np.array_equal(serial, recovered), f"{kind}: recovery drifted"

    def test_crash_recovery_hitting_times(self, monkeypatch, tmp_path):
        op = make_operator("plain")
        sources = _sources(op, 10)
        serial = op.hitting_times(sources, 0.25, max_steps=40)
        _inject(monkeypatch, tmp_path, "crash:1", once=True)
        recovered = op.hitting_times(
            sources, 0.25, max_steps=40, policy=ExecutionPolicy(workers=2)
        )
        assert np.array_equal(serial.times, recovered.times)
        assert np.array_equal(serial.final_distances, recovered.final_distances)

    def test_crash_increments_retry_counter(self, monkeypatch, tmp_path):
        op = make_operator("plain")
        sources = _sources(op)
        was_enabled = OBS.enabled
        OBS.reset()
        OBS.enable()
        try:
            _inject(monkeypatch, tmp_path, "crash:0", once=True)
            op.variation_curves(sources, WALKS, policy=ExecutionPolicy(workers=2))
            counters = OBS.snapshot()["counters"]
        finally:
            OBS.disable()
            OBS.reset()
            OBS.enabled = was_enabled
        assert counters.get("runtime.retry.crash", 0) >= 1
        assert counters.get("runtime.retry.rounds", 0) >= 1


@needs_pool
class TestTimeoutRecovery:
    def test_straggler_shard_redispatched_bit_identical(
        self, monkeypatch, tmp_path
    ):
        op = make_operator("lazy")
        sources = _sources(op)
        serial = op.variation_curves(sources, WALKS)
        monkeypatch.setenv("REPRO_FAULT_INJECT_SLEEP", "20.0")
        _inject(monkeypatch, tmp_path, "timeout:0", once=True)
        recovered = op.variation_curves(
            sources,
            WALKS,
            policy=ExecutionPolicy(workers=2, shard_timeout=1.0),
        )
        assert np.array_equal(serial, recovered)

    def test_timeout_route_tails(self, monkeypatch, tmp_path, bridge_graph):
        ri = RouteInstances(bridge_graph, 6, seed=21)
        nodes = np.arange(bridge_graph.num_nodes, dtype=np.int64)
        lengths = np.asarray([1, 3, 7], dtype=np.int64)
        serial = ri.tails_at_lengths(nodes, lengths, seed=2)
        monkeypatch.setenv("REPRO_FAULT_INJECT_SLEEP", "20.0")
        _inject(monkeypatch, tmp_path, "timeout:0", once=True)
        recovered = ri.tails_at_lengths(
            nodes,
            lengths,
            seed=2,
            policy=ExecutionPolicy(workers=2, shard_timeout=1.0),
        )
        assert np.array_equal(serial, recovered)


@needs_pool
class TestWorkerExceptionRecovery:
    def test_raised_fault_retried_bit_identical(self, monkeypatch, tmp_path):
        op = make_operator("teleport")
        sources = _sources(op)
        serial = op.variation_curves(sources, WALKS)
        _inject(monkeypatch, tmp_path, "raise:1", once=True)
        recovered = op.variation_curves(
            sources, WALKS, policy=ExecutionPolicy(workers=2)
        )
        assert np.array_equal(serial, recovered)

    def test_route_engine_crash_recovery(self, monkeypatch, tmp_path, bridge_graph):
        ri = RouteInstances(bridge_graph, 6, seed=33)
        nodes = np.arange(bridge_graph.num_nodes, dtype=np.int64)
        lengths = np.asarray([1, 3, 7, 12], dtype=np.int64)
        serial = ri.tails_at_lengths(nodes, lengths, seed=5)
        _inject(monkeypatch, tmp_path, "crash:0", once=True)
        recovered = ri.tails_at_lengths(
            nodes, lengths, seed=5, policy=ExecutionPolicy(workers=2)
        )
        assert np.array_equal(serial, recovered)


@needs_pool
class TestSerialDegradation:
    def test_persistent_crash_degrades_to_serial(self, monkeypatch, tmp_path):
        """With no claim file the fault fires on *every* attempt: retries
        exhaust and the shard finishes in-process — still bit-identical,
        never an exception, never partial output."""
        op = make_operator("plain")
        sources = _sources(op)
        serial = op.variation_curves(sources, WALKS)
        _inject(monkeypatch, tmp_path, "crash:0", once=False)
        degraded = op.variation_curves(
            sources, WALKS, policy=ExecutionPolicy(workers=2, max_retries=1)
        )
        assert np.array_equal(serial, degraded)

    def test_degradation_counters(self, monkeypatch, tmp_path):
        op = make_operator("plain")
        sources = _sources(op)
        was_enabled = OBS.enabled
        OBS.reset()
        OBS.enable()
        try:
            _inject(monkeypatch, tmp_path, "raise:0", once=False)
            op.variation_curves(
                sources, WALKS, policy=ExecutionPolicy(workers=2, max_retries=1)
            )
            counters = OBS.snapshot()["counters"]
        finally:
            OBS.disable()
            OBS.reset()
            OBS.enabled = was_enabled
        assert counters.get("runtime.serial_degradations", 0) >= 1
        assert counters.get("runtime.degraded_shards", 0) >= 1


# ----------------------------------------------------------------------
# Checkpoint / resume through the public APIs
# ----------------------------------------------------------------------
@needs_pool
class TestInterruptAndResume:
    def test_interrupted_sweep_resumes_bit_identical(self, monkeypatch, tmp_path):
        op = make_operator("plain")
        sources = np.arange(24) % op.num_states
        serial = op.variation_curves(sources, WALKS)
        ckpt = tmp_path / "ckpt"
        policy = ExecutionPolicy(workers=2, checkpoint_dir=str(ckpt))

        # Interrupt mid-sweep: the injected abort stops the run after
        # persisting whatever shards completed.
        _inject(monkeypatch, tmp_path, "abort:4", once=True)
        with pytest.raises(RuntimeFailure, match="interrupted"):
            op.variation_curves(sources, WALKS, policy=policy)
        saved = list(ckpt.glob("*/shard-*.npz"))
        assert saved, "interruption persisted no completed shards"

        # Resume: only the missing shards are recomputed.
        _clear_injection(monkeypatch)
        resumed = op.variation_curves(sources, WALKS, policy=policy)
        assert np.array_equal(serial, resumed)

    def test_resume_at_different_worker_count(self, monkeypatch, tmp_path):
        """A checkpoint taken under the pool resumes cleanly on the
        serial checkpointed path (workers=None) — fingerprints exclude
        the execution knobs."""
        op = make_operator("lazy")
        sources = np.arange(24) % op.num_states
        serial = op.variation_curves(sources, WALKS)
        ckpt = tmp_path / "ckpt"
        _inject(monkeypatch, tmp_path, "abort:2", once=True)
        with pytest.raises(RuntimeFailure):
            op.variation_curves(
                sources,
                WALKS,
                policy=ExecutionPolicy(workers=2, checkpoint_dir=str(ckpt)),
            )
        _clear_injection(monkeypatch)
        resumed = op.variation_curves(
            sources, WALKS, policy=ExecutionPolicy(checkpoint_dir=str(ckpt))
        )
        assert np.array_equal(serial, resumed)

    def test_completed_checkpoint_skips_recompute(self, tmp_path):
        op = make_operator("plain")
        sources = np.arange(16) % op.num_states
        ckpt = tmp_path / "ckpt"
        policy = ExecutionPolicy(workers=2, checkpoint_dir=str(ckpt))
        first = op.variation_curves(sources, WALKS, policy=policy)
        was_enabled = OBS.enabled
        OBS.reset()
        OBS.enable()
        try:
            second = op.variation_curves(sources, WALKS, policy=policy)
            counters = OBS.snapshot()["counters"]
        finally:
            OBS.disable()
            OBS.reset()
            OBS.enabled = was_enabled
        assert np.array_equal(first, second)
        assert counters.get("runtime.checkpoint.loaded_rows", 0) == sources.size
        assert counters.get("runtime.checkpoint.saved_shards", 0) == 0

    def test_resume_false_ignores_existing_checkpoint(self, tmp_path):
        op = make_operator("plain")
        sources = np.arange(12) % op.num_states
        ckpt = tmp_path / "ckpt"
        keep = ExecutionPolicy(workers=2, checkpoint_dir=str(ckpt))
        first = op.variation_curves(sources, WALKS, policy=keep)
        fresh = ExecutionPolicy(workers=2, checkpoint_dir=str(ckpt), resume=False)
        second = op.variation_curves(sources, WALKS, policy=fresh)
        assert np.array_equal(first, second)

    def test_corrupted_checkpoint_raises_through_public_api(self, tmp_path):
        op = make_operator("plain")
        sources = np.arange(12) % op.num_states
        ckpt = tmp_path / "ckpt"
        policy = ExecutionPolicy(checkpoint_dir=str(ckpt))
        op.variation_curves(sources, WALKS, policy=policy)
        shards = sorted(ckpt.glob("*/shard-*.npz"))
        assert shards
        shards[0].write_bytes(b"bit rot")
        with pytest.raises(CheckpointCorruption):
            op.variation_curves(sources, WALKS, policy=policy)

    def test_route_tails_interrupt_and_resume(self, monkeypatch, tmp_path, bridge_graph):
        ri = RouteInstances(bridge_graph, 8, seed=11)
        nodes = np.arange(bridge_graph.num_nodes, dtype=np.int64)
        lengths = np.asarray([1, 3, 7], dtype=np.int64)
        serial = ri.tails_at_lengths(nodes, lengths, seed=3)
        ckpt = tmp_path / "ckpt"
        policy = ExecutionPolicy(workers=2, checkpoint_dir=str(ckpt))
        _inject(monkeypatch, tmp_path, "abort:3", once=True)
        with pytest.raises(RuntimeFailure):
            ri.tails_at_lengths(nodes, lengths, seed=3, policy=policy)
        _clear_injection(monkeypatch)
        resumed = ri.tails_at_lengths(nodes, lengths, seed=3, policy=policy)
        assert np.array_equal(serial, resumed)


# ----------------------------------------------------------------------
# Full-scale tier-2 variant: the paper-sized sweep
# ----------------------------------------------------------------------
@needs_pool
@pytest.mark.slow
class TestFullScaleResume:
    def test_thousand_source_interrupted_resume_identical(
        self, monkeypatch, tmp_path
    ):
        """The acceptance scenario: a 1000-source sweep killed roughly
        halfway through resumes to output bit-identical to an
        uninterrupted serial run."""
        op = make_operator("plain")
        rng = np.random.default_rng(123)
        sources = rng.integers(0, op.num_states, size=1000)
        walks = [0, 2, 5, 10, 20, 40]
        serial = op.variation_curves(sources, walks)
        ckpt = tmp_path / "ckpt"
        policy = ExecutionPolicy(workers=2, checkpoint_dir=str(ckpt))
        # 8 shards of 125 rows; aborting at shard 4 lands ~50% through.
        _inject(monkeypatch, tmp_path, "abort:4", once=True)
        with pytest.raises(RuntimeFailure):
            op.variation_curves(sources, walks, policy=policy)
        done = sum(1 for _ in ckpt.glob("*/shard-*.npz"))
        assert 0 < done < 8
        _clear_injection(monkeypatch)
        resumed = op.variation_curves(sources, walks, policy=policy)
        assert np.array_equal(serial, resumed)
