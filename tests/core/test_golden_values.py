"""Golden-value regression suite for the measurement pipeline.

Pins Table-1-style numbers on small deterministic graphs against a
committed JSON fixture (``tests/data/golden_values.json``):

* the SLEM (and the signed ``lambda_2`` / ``lambda_min``) via **all
  three** ``transition_spectrum_extremes`` back-ends,
* the Theorem-2 lower/upper mixing-time bounds derived from the SLEM,
* the definition-based ``measure_mixing`` TVD curves at fixed sources
  and walk-length checkpoints,
* the sampled ``estimate_mixing_time`` hitting-time summary.

Every pinned value carries an explicit per-value tolerance (exact
eigensolvers get ``1e-12``, ARPACK ``1e-8``, the deflated power method
``1e-6``, evolved TVD curves ``1e-12``), so *any* future numeric drift —
a refactor of the operator layer, a parallel runtime, a BLAS change that
reorders reductions — fails loudly with the offending quantity named.

The graphs are tiny and fully deterministic: the Zachary karate club
(shipped in ``tests/data/karate.txt``), the Petersen graph (closed-form
walk spectrum {1, 1/3, -2/3}), a seeded two-community bridge (the
slow-mixing extreme) and a seeded Erdős–Rényi LCC (the fast-mixing
control).

Regenerating the fixture (only when a numeric change is *intended*)::

    PYTHONPATH=src python tests/core/test_golden_values.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    estimate_mixing_time,
    measure_mixing,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
    transition_spectrum_extremes,
)
from repro.generators import erdos_renyi_gnm, two_community_bridge
from repro.graph import Graph, largest_connected_component
from repro.graph.io import load_graph
from repro.sybil import (
    RouteInstances,
    SybilGuard,
    SybilLimit,
    SybilLimitParams,
    no_attack_scenario,
)

FIXTURE_PATH = Path(__file__).parent.parent / "data" / "golden_values.json"
KARATE_PATH = Path(__file__).parent.parent / "data" / "karate.txt"

#: Walk-length checkpoints for the pinned TVD curves (Figure-3 style).
GOLDEN_WALKS = [1, 2, 5, 10, 20, 40]

#: Fixed measurement sources (deterministic; all graphs have >= 10 nodes).
GOLDEN_SOURCES = [0, 1, 2, 3, 5, 8]

#: Epsilons at which the Theorem-2 bounds are pinned.
GOLDEN_EPSILONS = [0.25, 0.1, 0.01]

#: Per-back-end absolute tolerances for the spectral quantities.
SPECTRAL_ATOL = {"dense": 1e-12, "sparse": 1e-8, "power": 1e-6}

#: Absolute tolerance for evolved TVD curves (deterministic pairwise
#: reductions; anything beyond a few ulps is a real numeric change).
CURVE_ATOL = 1e-12

#: Relative tolerance for the closed-form bound values.
BOUND_RTOL = 1e-9

#: SybilLimit golden configuration (small enough to run per graph in the
#: tier-1 suite, large enough that intersection/balance both trigger).
SYBIL_WALKS = [2, 5, 10, 20]
SYBIL_INSTANCES = 16
SYBIL_PROTOCOL_SEED = 5
SYBIL_SWEEP_SEED = 9
SYBILGUARD_WALKS = [2, 6]
SYBILGUARD_SEED = 11
ROUTE_TAIL_NODES = [0, 1, 2, 3, 4, 5]
ROUTE_TAIL_LENGTHS = [2, 5, 9]
ROUTE_TAIL_INSTANCES = 4
ROUTE_TAIL_TABLE_SEED = 3
ROUTE_TAIL_START_SEED = 7


def _petersen() -> Graph:
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    return Graph.from_edges(outer + spokes + inner)


def build_golden_graphs() -> "dict[str, Graph]":
    """The deterministic graph zoo the goldens are pinned on."""
    er, _ = largest_connected_component(erdos_renyi_gnm(80, 240, seed=11))
    bridge, _ = two_community_bridge(30, 5, 1, seed=7)
    return {
        "karate": load_graph(KARATE_PATH),
        "petersen": _petersen(),
        "bridge": bridge,
        "er80": er,
    }


def compute_sybil_goldens(graph: Graph) -> dict:
    """Pinned Sybil-defense numbers for one golden graph.

    These freeze the *route-engine semantics* — instance-table draws,
    first-hop randomness, admission order and balance tie-breaking — so
    the vectorised kernels must reproduce the historical per-instance
    loop bit-for-bit, not merely statistically.
    """
    scenario = no_attack_scenario(graph)

    # --- SybilLimit admission sweep (Figure 8's inner loop) ------------
    protocol = SybilLimit(
        scenario,
        SybilLimitParams(
            route_length=max(SYBIL_WALKS), num_instances=SYBIL_INSTANCES
        ),
        seed=SYBIL_PROTOCOL_SEED,
    )
    outcomes = protocol.admission_sweep(0, SYBIL_WALKS, seed=SYBIL_SWEEP_SEED)
    sybillimit = {
        "num_instances": SYBIL_INSTANCES,
        "walk_lengths": SYBIL_WALKS,
        "accepted": [int(o.accepted.sum()) for o in outcomes],
        "intersected": [int(o.intersected.sum()) for o in outcomes],
        "admission_rates": [o.admission_rate for o in outcomes],
        "accepted_nodes_at_max": [int(v) for v in outcomes[-1].accepted_nodes()],
    }

    # --- SybilLimit, intersection-only fast path -----------------------
    loose = SybilLimit(
        scenario,
        SybilLimitParams(
            route_length=max(SYBIL_WALKS),
            num_instances=SYBIL_INSTANCES,
            enforce_balance=False,
        ),
        seed=SYBIL_PROTOCOL_SEED,
    )
    loose_outcomes = loose.admission_sweep(0, SYBIL_WALKS, seed=SYBIL_SWEEP_SEED)
    sybillimit["accepted_no_balance"] = [
        int(o.accepted.sum()) for o in loose_outcomes
    ]

    # --- SybilGuard (node-intersection admission) ----------------------
    sybilguard = {"walk_lengths": SYBILGUARD_WALKS, "accepted": []}
    for w in SYBILGUARD_WALKS:
        outcome = SybilGuard(scenario, w, seed=SYBILGUARD_SEED).run(0)
        sybilguard["accepted"].append(int(outcome.accepted.sum()))

    # --- Raw route tails (the engine itself, no protocol on top) -------
    routes = RouteInstances(
        graph, ROUTE_TAIL_INSTANCES, seed=ROUTE_TAIL_TABLE_SEED
    )
    tails = routes.tails_at_lengths(
        np.asarray(ROUTE_TAIL_NODES, dtype=np.int64),
        np.asarray(ROUTE_TAIL_LENGTHS, dtype=np.int64),
        seed=ROUTE_TAIL_START_SEED,
    )
    route_tails = {
        "nodes": ROUTE_TAIL_NODES,
        "lengths": ROUTE_TAIL_LENGTHS,
        "num_instances": ROUTE_TAIL_INSTANCES,
        "tail_slots": tails.tolist(),
        "tail_edges": routes.undirected_edge_ids(tails).tolist(),
    }

    return {
        "sybillimit": sybillimit,
        "sybilguard": sybilguard,
        "route_tails": route_tails,
    }


def compute_golden_values() -> dict:
    """Recompute every pinned quantity from scratch (the fixture's source)."""
    out: dict = {}
    for name, graph in build_golden_graphs().items():
        entry: dict = {
            "num_nodes": int(graph.num_nodes),
            "num_edges": int(graph.num_edges),
            "spectrum": {},
        }
        for method in ("dense", "sparse", "power"):
            summary = transition_spectrum_extremes(graph, method=method)
            entry["spectrum"][method] = {
                "lambda2": summary.lambda2,
                "lambda_min": summary.lambda_min,
                "slem": summary.slem,
            }
        mu = entry["spectrum"]["dense"]["slem"]
        entry["bounds"] = {
            str(eps): {
                "lower": mixing_time_lower_bound(mu, eps),
                "upper": mixing_time_upper_bound(mu, eps, graph.num_nodes),
            }
            for eps in GOLDEN_EPSILONS
        }
        measurement = measure_mixing(graph, GOLDEN_WALKS, sources=GOLDEN_SOURCES)
        entry["tvd_curves"] = {
            "sources": GOLDEN_SOURCES,
            "walk_lengths": GOLDEN_WALKS,
            "distances": measurement.distances.tolist(),
            "worst_case": measurement.worst_case().tolist(),
            "average_case": measurement.average_case().tolist(),
        }
        estimate = estimate_mixing_time(graph, 0.2, sources=GOLDEN_SOURCES, max_steps=500)
        entry["estimate"] = {
            "epsilon": 0.2,
            "walk_length": int(estimate.walk_length),
            "per_source": [int(t) for t in estimate.per_source],
        }
        entry["sybil"] = compute_sybil_goldens(graph)
        out[name] = entry
    return out


def load_fixture() -> dict:
    with FIXTURE_PATH.open(encoding="utf-8") as fh:
        return json.load(fh)


GRAPH_NAMES = ["karate", "petersen", "bridge", "er80"]


@pytest.fixture(scope="module")
def fixture() -> dict:
    assert FIXTURE_PATH.exists(), (
        "golden fixture missing; regenerate with "
        "`PYTHONPATH=src python tests/core/test_golden_values.py --regenerate`"
    )
    return load_fixture()


@pytest.fixture(scope="module")
def graphs() -> "dict[str, Graph]":
    return build_golden_graphs()


class TestGraphIdentity:
    """The graphs themselves must be reproduced bit-for-bit — a changed
    generator invalidates every downstream golden, so fail here first."""

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_order_and_size(self, fixture, graphs, name):
        assert graphs[name].num_nodes == fixture["graphs"][name]["num_nodes"]
        assert graphs[name].num_edges == fixture["graphs"][name]["num_edges"]


class TestSpectralGoldens:
    @pytest.mark.parametrize("name", GRAPH_NAMES)
    @pytest.mark.parametrize("method", ["dense", "sparse", "power"])
    def test_spectrum_extremes(self, fixture, graphs, name, method):
        golden = fixture["graphs"][name]["spectrum"][method]
        summary = transition_spectrum_extremes(graphs[name], method=method)
        atol = SPECTRAL_ATOL[method]
        for key, got in (
            ("lambda2", summary.lambda2),
            ("lambda_min", summary.lambda_min),
            ("slem", summary.slem),
        ):
            assert got == pytest.approx(golden[key], abs=atol), (
                f"{name}/{method}/{key} drifted: {got!r} != {golden[key]!r} (atol={atol})"
            )

    def test_petersen_closed_form(self, graphs):
        """Sanity anchor independent of the fixture: the Petersen walk
        spectrum is exactly {1, 1/3, -2/3}."""
        summary = transition_spectrum_extremes(graphs["petersen"], method="dense")
        assert summary.lambda2 == pytest.approx(1.0 / 3.0, abs=1e-12)
        assert summary.lambda_min == pytest.approx(-2.0 / 3.0, abs=1e-12)
        assert summary.slem == pytest.approx(2.0 / 3.0, abs=1e-12)

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_backends_agree(self, fixture, name):
        """Cross-check: the three back-ends pin the *same* SLEM within the
        loosest back-end tolerance."""
        spectrum = fixture["graphs"][name]["spectrum"]
        dense = spectrum["dense"]["slem"]
        assert spectrum["sparse"]["slem"] == pytest.approx(dense, abs=1e-7)
        assert spectrum["power"]["slem"] == pytest.approx(dense, abs=1e-5)


class TestBoundGoldens:
    @pytest.mark.parametrize("name", GRAPH_NAMES)
    @pytest.mark.parametrize("eps", GOLDEN_EPSILONS)
    def test_lower_and_upper_bounds(self, fixture, graphs, name, eps):
        entry = fixture["graphs"][name]
        mu = entry["spectrum"]["dense"]["slem"]
        golden = entry["bounds"][str(eps)]
        lower = mixing_time_lower_bound(mu, eps)
        upper = mixing_time_upper_bound(mu, eps, graphs[name].num_nodes)
        assert lower == pytest.approx(golden["lower"], rel=BOUND_RTOL)
        assert upper == pytest.approx(golden["upper"], rel=BOUND_RTOL)
        if eps < 0.5:
            assert lower <= upper


class TestCurveGoldens:
    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_tvd_curves(self, fixture, graphs, name):
        golden = fixture["graphs"][name]["tvd_curves"]
        measurement = measure_mixing(
            graphs[name], golden["walk_lengths"], sources=golden["sources"]
        )
        got = measurement.distances
        want = np.asarray(golden["distances"], dtype=np.float64)
        assert got.shape == want.shape
        worst = np.abs(got - want).max()
        assert worst <= CURVE_ATOL, (
            f"{name}: TVD curve drifted by {worst:.3e} (> {CURVE_ATOL})"
        )
        assert measurement.worst_case() == pytest.approx(
            golden["worst_case"], abs=CURVE_ATOL
        )
        assert measurement.average_case() == pytest.approx(
            golden["average_case"], abs=CURVE_ATOL
        )

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_curves_monotone_envelope(self, fixture, name):
        """Qualitative pin alongside the exact one: worst-case distance
        never increases along the recorded checkpoints."""
        worst = np.asarray(fixture["graphs"][name]["tvd_curves"]["worst_case"])
        assert np.all(np.diff(worst) <= 1e-12)


class TestEstimateGoldens:
    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_hitting_time_estimate(self, fixture, graphs, name):
        golden = fixture["graphs"][name]["estimate"]
        estimate = estimate_mixing_time(
            graphs[name], golden["epsilon"], sources=GOLDEN_SOURCES, max_steps=500
        )
        assert estimate.walk_length == golden["walk_length"]
        assert [int(t) for t in estimate.per_source] == golden["per_source"]


class TestSybilGoldens:
    """Route-engine / admission goldens (pinned ahead of kernel changes).

    Unlike the float-valued spectral pins these are **exact**: tail slots
    and admission verdicts are integers, so any deviation — a different
    permutation draw, a reordered tie-break, a changed first hop — is a
    behavioural change, not numeric noise.
    """

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_sybillimit_admission_sweep(self, fixture, graphs, name):
        golden = fixture["graphs"][name]["sybil"]["sybillimit"]
        protocol = SybilLimit(
            no_attack_scenario(graphs[name]),
            SybilLimitParams(
                route_length=max(golden["walk_lengths"]),
                num_instances=golden["num_instances"],
            ),
            seed=SYBIL_PROTOCOL_SEED,
        )
        outcomes = protocol.admission_sweep(
            0, golden["walk_lengths"], seed=SYBIL_SWEEP_SEED
        )
        assert [int(o.accepted.sum()) for o in outcomes] == golden["accepted"]
        assert [int(o.intersected.sum()) for o in outcomes] == golden["intersected"]
        for o, rate in zip(outcomes, golden["admission_rates"]):
            assert o.admission_rate == pytest.approx(rate, abs=0)
        assert [int(v) for v in outcomes[-1].accepted_nodes()] == (
            golden["accepted_nodes_at_max"]
        )

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_sybillimit_no_balance_fast_path(self, fixture, graphs, name):
        golden = fixture["graphs"][name]["sybil"]["sybillimit"]
        protocol = SybilLimit(
            no_attack_scenario(graphs[name]),
            SybilLimitParams(
                route_length=max(golden["walk_lengths"]),
                num_instances=golden["num_instances"],
                enforce_balance=False,
            ),
            seed=SYBIL_PROTOCOL_SEED,
        )
        outcomes = protocol.admission_sweep(
            0, golden["walk_lengths"], seed=SYBIL_SWEEP_SEED
        )
        got = [int(o.accepted.sum()) for o in outcomes]
        assert got == golden["accepted_no_balance"]
        # Dropping the balance condition can only admit more.
        assert all(
            loose >= strict
            for loose, strict in zip(got, golden["accepted"])
        )

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_sybilguard_accepted_counts(self, fixture, graphs, name):
        golden = fixture["graphs"][name]["sybil"]["sybilguard"]
        scenario = no_attack_scenario(graphs[name])
        for w, want in zip(golden["walk_lengths"], golden["accepted"]):
            outcome = SybilGuard(scenario, w, seed=SYBILGUARD_SEED).run(0)
            assert int(outcome.accepted.sum()) == want, f"{name} w={w}"

    @pytest.mark.parametrize("name", GRAPH_NAMES)
    def test_route_tails_bit_exact(self, fixture, graphs, name):
        golden = fixture["graphs"][name]["sybil"]["route_tails"]
        routes = RouteInstances(
            graphs[name], golden["num_instances"], seed=ROUTE_TAIL_TABLE_SEED
        )
        tails = routes.tails_at_lengths(
            np.asarray(golden["nodes"], dtype=np.int64),
            np.asarray(golden["lengths"], dtype=np.int64),
            seed=ROUTE_TAIL_START_SEED,
        )
        np.testing.assert_array_equal(
            tails, np.asarray(golden["tail_slots"], dtype=np.int64)
        )
        np.testing.assert_array_equal(
            routes.undirected_edge_ids(tails),
            np.asarray(golden["tail_edges"], dtype=np.int64),
        )


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    payload = {
        "_meta": {
            "description": "Golden regression values for the mixing-time pipeline",
            "regenerate": "PYTHONPATH=src python tests/core/test_golden_values.py --regenerate",
            "tolerances": {
                "spectral": SPECTRAL_ATOL,
                "curves_atol": CURVE_ATOL,
                "bounds_rtol": BOUND_RTOL,
            },
        },
        "graphs": compute_golden_values(),
    }
    FIXTURE_PATH.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {FIXTURE_PATH}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regenerate" in sys.argv:
        regenerate()
    else:
        print(__doc__)
