"""Incremental spectral maintenance: warm starts, trackers, trends.

The load-bearing contract is :data:`WARM_SLEM_ATOL`: a warm-started
solve must agree with a cold solve to within ``1e-6`` on every window,
on every SpMM backend, or it silently corrupts the service's trend
answers.  These tests drive real delta streams through the warm solver
and check the contract directly, plus every documented cold-fallback
trigger and the bit-for-bit stationary tracker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    MAX_WARM_DELTA_FRACTION,
    WARM_SLEM_ATOL,
    ExecutionPolicy,
    SpectralState,
    StationaryTracker,
    available_backends,
    mixing_trend,
    slem_trend,
    stationary_distribution,
    transition_spectrum_extremes,
    warm_spectral_extremes,
)
from repro.core.backends import FLOAT32_CURVE_ATOL
from repro.errors import ConfigurationError, NotConnectedError
from repro.generators import erdos_renyi_gnm
from repro.graph import EdgeDelta, Graph, TemporalGraph, largest_connected_component


def _big_graph(seed=11, n=300, m=1100) -> Graph:
    """A connected, non-bipartite graph comfortably above _MIN_WARM_NODES."""
    graph = largest_connected_component(erdos_renyi_gnm(n, m, seed=seed))[0]
    assert graph.num_nodes > 64
    return graph


def _churn_delta(graph: Graph, rng, t, k_ins=6, k_del=6) -> EdgeDelta:
    edges = graph.edges()
    del_idx = rng.choice(edges.shape[0], size=k_del, replace=False)
    delete = edges[np.sort(del_idx)]
    existing = {tuple(e) for e in edges}
    n = graph.num_nodes
    insert = set()
    while len(insert) < k_ins:
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in existing and key not in insert:
            insert.add(key)
    return EdgeDelta(t, insert=sorted(insert), delete=delete)


def _temporal_stream(seed=11, windows=5) -> TemporalGraph:
    """A temporal graph whose every window stays connected (small churn)."""
    base = _big_graph(seed=seed)
    temporal = TemporalGraph(base)
    rng = np.random.default_rng(seed)
    for w in range(windows):
        t = 10 * (w + 1)
        for _ in range(40):  # retry churn until the window stays connected
            delta = _churn_delta(temporal.snapshot(), rng, t)
            candidate = TemporalGraph(temporal.snapshot())
            candidate.append(EdgeDelta(t, insert=delta.insert, delete=delta.delete))
            from repro.graph import is_connected

            if is_connected(candidate.snapshot()):
                temporal.append(delta)
                break
        else:  # pragma: no cover - churn is tiny relative to m
            raise AssertionError("could not find a connectivity-preserving delta")
    return temporal


class TestWarmAgreementContract:
    """Warm SLEM == cold SLEM within WARM_SLEM_ATOL, on every backend."""

    @pytest.mark.parametrize("backend", available_backends())
    def test_warm_matches_cold_across_stream(self, backend):
        temporal = _temporal_stream(seed=11)
        policy = ExecutionPolicy(backend=backend)
        # float32 matvecs perturb the operator itself, so the agreement
        # envelope widens to the backend's pinned curve tolerance.
        atol = WARM_SLEM_ATOL if backend != "float32" else FLOAT32_CURVE_ATOL
        state = None
        prev_t = None
        warm_windows = 0
        for t in temporal.times():
            graph = temporal.at(t)
            changed = (
                temporal.changes_between(prev_t, t) if prev_t is not None else None
            )
            state = warm_spectral_extremes(
                graph, state, changed_edges=changed, policy=policy
            )
            cold = transition_spectrum_extremes(graph)
            assert abs(state.slem - cold.slem) <= atol, (
                f"{backend} window t={t}: warm {state.slem!r} vs cold {cold.slem!r}"
            )
            assert abs(state.lambda2 - cold.lambda2) <= atol
            assert abs(state.lambda_min - cold.lambda_min) <= atol
            warm_windows += int(state.warm_started)
            prev_t = t
        # The whole point: after the cold first window, we stay warm.
        assert warm_windows == len(temporal.times()) - 1

    def test_warm_state_seeds_next_window(self):
        temporal = _temporal_stream(seed=23, windows=2)
        t0, t1 = temporal.times()[:2]
        cold0 = warm_spectral_extremes(temporal.at(t0))
        assert not cold0.warm_started
        warm1 = warm_spectral_extremes(
            temporal.at(t1),
            cold0,
            changed_edges=temporal.changes_between(t0, t1),
        )
        assert warm1.warm_started
        assert warm1.matvecs < cold0.matvecs

    def test_summary_reports_method(self):
        graph = _big_graph()
        cold = warm_spectral_extremes(graph)
        warm = warm_spectral_extremes(graph, cold, changed_edges=0)
        assert cold.summary().method == "cold"
        assert warm.summary().method == "warm"
        assert warm.summary().gap == pytest.approx(1.0 - warm.slem)


class TestColdFallbackTriggers:
    """Every documented guard must force warm_started=False."""

    def test_no_state_is_cold(self):
        state = warm_spectral_extremes(_big_graph())
        assert not state.warm_started
        assert isinstance(state, SpectralState)

    def test_mismatched_node_count_is_cold(self):
        small = _big_graph(seed=3, n=200, m=700)
        big = _big_graph(seed=3, n=300, m=1100)
        state = warm_spectral_extremes(small)
        follow = warm_spectral_extremes(big, state, changed_edges=1)
        assert not follow.warm_started

    def test_small_graph_is_always_cold(self):
        # n <= _MIN_WARM_NODES: dense eigh beats Lanczos, warm is skipped.
        edges = [(i, (i + 1) % 20) for i in range(20)] + [(0, 2)]
        graph = Graph.from_edges(np.array(edges, dtype=np.int64))
        state = warm_spectral_extremes(graph)
        follow = warm_spectral_extremes(graph, state, changed_edges=0)
        assert not follow.warm_started
        assert abs(follow.slem - transition_spectrum_extremes(graph).slem) <= 1e-12

    def test_large_delta_fraction_is_cold(self):
        graph = _big_graph()
        state = warm_spectral_extremes(graph)
        too_many = int(MAX_WARM_DELTA_FRACTION * graph.num_edges) + 1
        follow = warm_spectral_extremes(graph, state, changed_edges=too_many)
        assert not follow.warm_started
        # One fewer changed edge sits inside the budget and warm-starts.
        ok = warm_spectral_extremes(graph, state, changed_edges=too_many - 1)
        assert ok.warm_started


class TestStationaryTracker:
    """Theorem 1 maintenance: deg/2m, bit-for-bit against the cold path."""

    def test_bit_identical_over_churn(self):
        graph = _big_graph(seed=7)
        tracker = StationaryTracker.from_graph(graph)
        rng = np.random.default_rng(7)
        for t in range(5):
            delta = _churn_delta(graph, rng, t)
            tracker = tracker.apply(delta)
            from repro.graph import apply_delta

            graph = apply_delta(graph, delta)
            assert (
                tracker.distribution().tobytes()
                == stationary_distribution(graph).tobytes()
            )

    def test_apply_returns_new_tracker(self):
        graph = _big_graph()
        tracker = StationaryTracker.from_graph(graph)
        delta = EdgeDelta(1, delete=graph.edges()[:1])
        updated = tracker.apply(delta)
        assert updated is not tracker
        assert tracker.num_edges == graph.num_edges
        assert updated.num_edges == graph.num_edges - 1

    def test_over_deletion_raises(self):
        tracker = StationaryTracker(np.array([1, 1], dtype=np.int64), 1)
        bad = EdgeDelta(1, delete=[(0, 1)] )
        stripped = tracker.apply(bad)  # legal: removes the only edge
        with pytest.raises(ConfigurationError, match="more incident edges"):
            stripped.apply(EdgeDelta(2, delete=[(0, 1)]))

    def test_no_edges_raises(self):
        tracker = StationaryTracker(np.zeros(3, dtype=np.int64), 0)
        with pytest.raises(NotConnectedError, match="no edges"):
            tracker.distribution()

    def test_isolated_node_raises(self):
        tracker = StationaryTracker(np.array([1, 1, 0], dtype=np.int64), 1)
        with pytest.raises(NotConnectedError, match="isolated"):
            tracker.distribution()


class TestTrends:
    def test_slem_trend_matches_per_window_cold(self):
        temporal = _temporal_stream(seed=31, windows=4)
        trend = slem_trend(temporal)
        assert len(trend) == len(temporal.times())
        assert trend.times == temporal.times()
        for i, t in enumerate(trend.times):
            cold = transition_spectrum_extremes(temporal.at(t))
            assert abs(trend.slem[i] - cold.slem) <= WARM_SLEM_ATOL
        assert not trend.warm_started[0]
        assert trend.warm_started[1:].all()

    def test_slem_trend_warm_false_is_all_cold(self):
        temporal = _temporal_stream(seed=31, windows=3)
        trend = slem_trend(temporal, warm=False)
        assert not trend.warm_started.any()

    def test_slem_trend_deterministic(self):
        temporal = _temporal_stream(seed=41, windows=3)
        a = slem_trend(temporal)
        b = slem_trend(temporal)
        assert a.slem.tobytes() == b.slem.tobytes()
        assert a.matvecs.tolist() == b.matvecs.tolist()

    def test_mixing_trend_shapes_and_determinism(self):
        temporal = _temporal_stream(seed=13, windows=3)
        walks = (1, 4, 8)
        a = mixing_trend(temporal, walks, num_sources=6, seed=2)
        b = mixing_trend(temporal, walks, num_sources=6, seed=2)
        T, S, W = len(temporal.times()), 6, len(walks)
        assert a.distances.shape == (T, S, W)
        assert a.worst_case().shape == (T, W)
        assert a.average_case().shape == (T, W)
        assert a.sources == b.sources
        assert a.distances.tobytes() == b.distances.tobytes()
        # TVD is monotone non-increasing in expectation; at least check
        # the worst case never exceeds 1 and the longest walk beats w=1.
        assert (a.distances <= 1.0 + 1e-12).all()
        assert (a.worst_case()[:, -1] <= a.worst_case()[:, 0]).all()

    def test_mixing_trend_fixed_sources_reused(self):
        temporal = _temporal_stream(seed=17, windows=2)
        trend = mixing_trend(temporal, [2, 4], sources=[0, 5, 9])
        assert trend.sources == (0, 5, 9)

    def test_times_validation(self):
        temporal = _temporal_stream(seed=19, windows=2)
        with pytest.raises(ConfigurationError, match="non-empty"):
            slem_trend(temporal, times=[])
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            slem_trend(temporal, times=[10, 10])
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            mixing_trend(temporal, [1, 2], times=[20, 10])
