"""Unit tests for definition-based mixing measurement (equation (2))."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.core import (
    TransitionOperator,
    estimate_mixing_time,
    measure_mixing,
    mixing_time_from_source,
    mixing_time_lower_bound,
    sample_sources,
    slem,
    variation_distance_curve,
)


class TestVariationDistanceCurve:
    def test_starts_at_point_mass_distance(self, petersen):
        op = TransitionOperator(petersen)
        curve = variation_distance_curve(op, 0, 10)
        pi = op.stationary()
        assert curve[0] == pytest.approx(1 - pi[0])

    def test_decreasing_envelope(self, petersen):
        op = TransitionOperator(petersen)
        curve = variation_distance_curve(op, 0, 30)
        # Distance at the end must be (weakly) below the start; strict
        # per-step monotonicity is not guaranteed for non-lazy walks.
        assert curve[-1] < 1e-4
        assert curve[-1] <= curve[0]

    def test_length(self, cycle5):
        op = TransitionOperator(cycle5)
        assert variation_distance_curve(op, 0, 7).size == 8

    def test_negative_steps(self, cycle5):
        op = TransitionOperator(cycle5)
        with pytest.raises(ValueError):
            variation_distance_curve(op, 0, -1)


class TestMixingTimeFromSource:
    def test_complete_graph_fast(self, complete5):
        op = TransitionOperator(complete5)
        t = mixing_time_from_source(op, 0, 0.1)
        assert t <= 5

    def test_bridge_graph_slow(self, bridge_graph):
        op = TransitionOperator(bridge_graph)
        t = mixing_time_from_source(op, 0, 0.1, max_steps=20000)
        assert t > 50

    def test_zero_if_already_close(self, complete5):
        op = TransitionOperator(complete5)
        # eps close to 1: the point mass is already within distance.
        assert mixing_time_from_source(op, 0, 0.9) == 0

    def test_raises_on_budget_exhaustion(self, bridge_graph):
        op = TransitionOperator(bridge_graph)
        with pytest.raises(ConvergenceError) as err:
            mixing_time_from_source(op, 0, 1e-4, max_steps=3)
        assert err.value.partial is not None

    def test_epsilon_validation(self, cycle5):
        op = TransitionOperator(cycle5)
        with pytest.raises(ValueError):
            mixing_time_from_source(op, 0, 0.0)


class TestSampleSources:
    def test_none_means_all(self, petersen):
        assert sample_sources(petersen, None).tolist() == list(range(10))

    def test_count_at_least_n_means_all(self, petersen):
        assert sample_sources(petersen, 99).size == 10

    def test_subsample_distinct_and_sorted(self, er_medium):
        src = sample_sources(er_medium, 50, seed=1)
        assert src.size == 50
        assert np.unique(src).size == 50
        assert np.all(np.diff(src) > 0)

    def test_deterministic(self, er_medium):
        a = sample_sources(er_medium, 20, seed=9)
        b = sample_sources(er_medium, 20, seed=9)
        assert np.array_equal(a, b)

    def test_invalid_count(self, petersen):
        with pytest.raises(ValueError):
            sample_sources(petersen, 0)


class TestMeasureMixing:
    def test_shape_and_metadata(self, petersen):
        m = measure_mixing(petersen, [1, 5, 10])
        assert m.distances.shape == (10, 3)
        assert m.walk_lengths.tolist() == [1, 5, 10]
        assert m.sources.size == 10

    def test_matches_per_source_curve(self, petersen):
        m = measure_mixing(petersen, [2, 6])
        op = TransitionOperator(petersen)
        for i, src in enumerate(m.sources):
            curve = variation_distance_curve(op, int(src), 6)
            assert m.distances[i, 0] == pytest.approx(curve[2])
            assert m.distances[i, 1] == pytest.approx(curve[6])

    def test_source_subset(self, petersen):
        m = measure_mixing(petersen, [3], sources=[2, 7])
        assert m.sources.tolist() == [2, 7]

    def test_invalid_walk_lengths(self, petersen):
        with pytest.raises(ValueError):
            measure_mixing(petersen, [])
        with pytest.raises(ValueError):
            measure_mixing(petersen, [5, 5])
        with pytest.raises(ValueError):
            measure_mixing(petersen, [5, 1])

    def test_worst_and_average(self, bridge_graph):
        m = measure_mixing(bridge_graph, [5, 40], sources=30, seed=2)
        assert np.all(m.worst_case() >= m.average_case())
        assert np.all(m.quantile(0.5) <= m.worst_case())

    def test_mixing_time_lookup(self, complete5):
        m = measure_mixing(complete5, [1, 2, 3, 4, 5])
        assert m.mixing_time(0.2) <= 3

    def test_mixing_time_unreachable_raises(self, bridge_graph):
        m = measure_mixing(bridge_graph, [1, 2], sources=10, seed=3)
        with pytest.raises(ConvergenceError):
            m.mixing_time(1e-6)

    def test_epsilon_at_unknown_length(self, petersen):
        m = measure_mixing(petersen, [1, 5])
        with pytest.raises(KeyError):
            m.epsilon_at(3)

    def test_bipartite_needs_laziness(self, cycle6):
        from repro.errors import NotErgodicError

        with pytest.raises(NotErgodicError):
            measure_mixing(cycle6, [1, 2])
        m = measure_mixing(cycle6, [1, 2], laziness=0.2)
        assert m.distances.shape == (6, 2)


class TestEstimateMixingTime:
    def test_exhaustive_flag(self, petersen):
        est = estimate_mixing_time(petersen, 0.2)
        assert est.exhaustive
        assert est.per_source.size == 10

    def test_walk_length_is_max_over_sources(self, two_triangles_bridged):
        est = estimate_mixing_time(two_triangles_bridged, 0.1)
        assert est.walk_length == est.per_source.max()

    def test_average_below_worst(self, bridge_graph):
        est = estimate_mixing_time(bridge_graph, 0.2, sources=20, seed=4, max_steps=20000)
        assert est.average_walk_length <= est.walk_length

    def test_sampled_lower_bounds_definition(self, bridge_graph):
        """A sampled estimate can only under-estimate the exhaustive one."""
        full = estimate_mixing_time(bridge_graph, 0.2, max_steps=20000)
        sampled = estimate_mixing_time(bridge_graph, 0.2, sources=15, seed=5, max_steps=20000)
        assert sampled.walk_length <= full.walk_length

    def test_consistent_with_slem_bound(self, bridge_graph):
        """Theorem 2: the measured T(eps) must respect the lower bound."""
        eps = 0.05
        bound = mixing_time_lower_bound(slem(bridge_graph), eps)
        est = estimate_mixing_time(bridge_graph, eps, max_steps=30000)
        assert est.walk_length >= bound * 0.99

    def test_no_source_converges_raises(self, bridge_graph):
        with pytest.raises(ConvergenceError):
            estimate_mixing_time(bridge_graph, 1e-5, sources=5, seed=6, max_steps=5)
