"""Tests for the unified Markov-operator layer (`repro.core.operators`).

Two families:

* **Property tests** (hypothesis): the block API is a pure speed
  transform — ``step_block`` on an ``(s, n)`` block must equal ``s``
  sequential ``step`` calls *bit-for-bit*, for every operator flavour
  (plain, lazy, directed pure, directed teleporting, weighted), and the
  chunked batch measurements must be invariant to ``block_size``
  (including the boundary chunkings 1, s−1 and s).
* **Regression tests** for the historical validation drift: all three
  operator classes now share one shape/probability gate, one cached
  ``stationary()``, and one evolution code path.
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DEFAULT_BLOCK_BYTES,
    DirectedTransitionOperator,
    MarkovOperator,
    TransitionOperator,
    WeightedTransitionOperator,
    jaccard_arc_weights,
    measure_mixing,
    mixing_time_from_source,
    resolve_block_size,
    total_variation_distance,
    total_variation_to_reference,
)
from repro.core.operators import HittingTimes
from repro.errors import ConvergenceError
from repro.generators import erdos_renyi_gnm, two_community_bridge
from repro.graph import DiGraph, largest_connected_component


# ----------------------------------------------------------------------
# Shared operator zoo (graphs are immutable; operators are stateless
# apart from the stationary cache, so module-level sharing is safe).
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def _er_graph():
    g = erdos_renyi_gnm(90, 330, seed=5)
    g, _ = largest_connected_component(g)
    return g


@functools.lru_cache(maxsize=None)
def _digraph():
    n = 40
    arcs = [(i, (i + 1) % n) for i in range(n)]
    arcs += [(i, (i + 2) % n) for i in range(n)]
    arcs += [(i, (i + 9) % n) for i in range(n)]
    return DiGraph.from_edges(arcs)


@functools.lru_cache(maxsize=None)
def _dangling_digraph():
    # Node 4 has no out-arcs: exercises the dangling-teleport branch.
    return DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (2, 4)])


@functools.lru_cache(maxsize=None)
def make_operator(kind: str) -> MarkovOperator:
    if kind == "plain":
        return TransitionOperator(_er_graph())
    if kind == "lazy":
        return TransitionOperator(_er_graph(), laziness=0.35)
    if kind == "directed":
        return DirectedTransitionOperator(_digraph())
    if kind == "teleport":
        return DirectedTransitionOperator(_digraph(), damping=0.85)
    if kind == "dangling":
        return DirectedTransitionOperator(_dangling_digraph(), damping=0.9)
    if kind == "weighted":
        g = _er_graph()
        return WeightedTransitionOperator(g, jaccard_arc_weights(g))
    raise KeyError(kind)


ALL_KINDS = ["plain", "lazy", "directed", "teleport", "dangling", "weighted"]


# ----------------------------------------------------------------------
# Property: block evolution == sequential evolution, bit-for-bit
# ----------------------------------------------------------------------
class TestBlockEqualsSequential:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_step_block_matches_sequential_steps(self, kind, data):
        op = make_operator(kind)
        n = op.num_states
        sources = data.draw(
            st.lists(st.integers(0, n - 1), min_size=1, max_size=7), label="sources"
        )
        steps = data.draw(st.integers(0, 5), label="steps")
        block = op.point_mass_block(sources)
        for _ in range(steps):
            block = op.step_block(block)
        for i, src in enumerate(sources):
            x = op.point_mass(src)
            for _ in range(steps):
                x = op.step(x)
            assert np.array_equal(block[i], x), (
                f"{kind}: block row {i} diverged from sequential evolution"
            )

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_evolve_block_matches_evolve(self, kind):
        op = make_operator(kind)
        sources = [0, 1, 2, 0]
        block = op.evolve_block(op.point_mass_block(sources), 6)
        for i, src in enumerate(sources):
            assert np.array_equal(block[i], op.evolve(op.point_mass(src), 6))

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("block_size", [1, None, "s-1", "s"])
    def test_variation_curves_invariant_to_chunking(self, kind, block_size):
        """Chunk boundaries (1, s−1, s, auto) never change the numbers."""
        op = make_operator(kind)
        sources = np.arange(6) % op.num_states
        walks = [0, 1, 3, 7]
        if block_size == "s-1":
            block_size = sources.size - 1
        elif block_size == "s":
            block_size = sources.size
        got = op.variation_curves(sources, walks, block_size=block_size)
        want = np.stack(
            [op.variation_curve(int(s), 7)[walks] for s in sources]
        )
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("block_size", [1, 2, 3, None])
    def test_hitting_times_invariant_to_chunking(self, block_size):
        op = make_operator("plain")
        sources = [0, 1, 2, 3]
        base = op.hitting_times(sources, 0.1, max_steps=500)
        got = op.hitting_times(sources, 0.1, max_steps=500, block_size=block_size)
        assert np.array_equal(base.times, got.times)
        assert np.array_equal(base.final_distances, got.final_distances)

    def test_lazy_operator_block_at_chunk_boundaries(self):
        """The ISSUE's explicit case: laziness > 0 with s ∈ {1, s−1, s}."""
        op = make_operator("lazy")
        sources = [3, 1, 4, 1, 5]
        for bs in (1, len(sources) - 1, len(sources)):
            got = op.variation_curves(sources, [2, 5], block_size=bs)
            want = np.stack([op.variation_curve(s, 5)[[2, 5]] for s in sources])
            assert np.array_equal(got, want)


# ----------------------------------------------------------------------
# Point-mass blocks
# ----------------------------------------------------------------------
class TestPointMassBlock:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_matches_stacked_point_masses(self, kind):
        op = make_operator(kind)
        sources = [0, 2, 1, 2]
        block = op.point_mass_block(sources)
        assert block.shape == (4, op.num_states)
        for i, src in enumerate(sources):
            assert np.array_equal(block[i], op.point_mass(src))

    def test_rejects_empty_and_out_of_range(self):
        op = make_operator("plain")
        with pytest.raises(ValueError):
            op.point_mass_block([])
        with pytest.raises(IndexError):
            op.point_mass_block([0, op.num_states])
        with pytest.raises(IndexError):
            op.point_mass_block([-1])


# ----------------------------------------------------------------------
# Unified validation (regression for the historical drift)
# ----------------------------------------------------------------------
class TestUnifiedValidation:
    """Pre-refactor, the directed/weighted operators accepted inputs the
    undirected one rejected (and vice versa).  Now all three share the
    base-class gates; these tests pin the contract for each class."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_step_rejects_wrong_length(self, kind):
        op = make_operator(kind)
        with pytest.raises(ValueError, match="shape"):
            op.step(np.ones(op.num_states + 1))

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_step_rejects_2d_input(self, kind):
        op = make_operator(kind)
        with pytest.raises(ValueError, match="shape"):
            op.step(op.point_mass_block([0, 1]))

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_step_block_rejects_1d_input(self, kind):
        op = make_operator(kind)
        with pytest.raises(ValueError, match="shape"):
            op.step_block(op.point_mass(0))

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_step_block_rejects_wrong_width(self, kind):
        op = make_operator(kind)
        with pytest.raises(ValueError, match="shape"):
            op.step_block(np.ones((2, op.num_states + 3)))

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_evolve_rejects_negative_steps(self, kind):
        op = make_operator(kind)
        with pytest.raises(ValueError, match="nonnegative"):
            op.evolve(op.point_mass(0), -1)
        with pytest.raises(ValueError, match="nonnegative"):
            op.evolve_block(op.point_mass_block([0]), -2)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_evolve_validates_probability_vector(self, kind):
        op = make_operator(kind)
        not_a_distribution = np.full(op.num_states, 0.5)
        with pytest.raises(ValueError, match="sum"):
            op.evolve(not_a_distribution, 1)
        # validate=False admits arbitrary vectors (linear operator).
        out = op.evolve(not_a_distribution, 1, validate=False)
        assert out.shape == (op.num_states,)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_trajectory_available_on_all_operators(self, kind):
        """`trajectory` used to exist only on the undirected operator."""
        op = make_operator(kind)
        traj = op.trajectory(op.point_mass(0), 3)
        assert traj.shape == (4, op.num_states)
        assert np.array_equal(traj[3], op.evolve(op.point_mass(0), 3))

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_variation_curve_rejects_negative(self, kind):
        op = make_operator(kind)
        with pytest.raises(ValueError):
            op.variation_curve(0, -1)


# ----------------------------------------------------------------------
# Stationary caching
# ----------------------------------------------------------------------
class TestStationaryCache:
    @pytest.mark.parametrize("kind", ["plain", "lazy", "weighted"])
    def test_memoised_and_read_only(self, kind):
        op = make_operator(kind)
        pi = op.stationary()
        assert op.stationary() is pi  # cached, not recomputed
        with pytest.raises(ValueError):
            pi[0] = 0.5  # cache cannot be corrupted through the reference

    def test_directed_power_iteration_runs_once(self, monkeypatch):
        calls = []
        original = DirectedTransitionOperator._power_stationary

        def spy(self, **kwargs):
            calls.append(kwargs)
            return original(self, **kwargs)

        monkeypatch.setattr(DirectedTransitionOperator, "_power_stationary", spy)
        op = DirectedTransitionOperator(_digraph())
        pi = op.stationary()
        assert op.stationary() is pi
        op.variation_curve(0, 3)
        op.hitting_times([0, 1], 0.5, max_steps=10)
        assert len(calls) == 1  # memoised across every measurement entry point

    def test_directed_cache_is_per_parameterisation(self):
        op = DirectedTransitionOperator(_digraph())
        a = op.stationary()
        b = op.stationary(tol=1e-10, max_iter=50_000)
        assert np.allclose(a, b, atol=1e-9)
        assert op.stationary(tol=1e-10, max_iter=50_000) is b


# ----------------------------------------------------------------------
# Hitting times (early-exit masking)
# ----------------------------------------------------------------------
class TestHittingTimes:
    def test_matches_manual_per_source_loop(self):
        op = make_operator("plain")
        pi = op.stationary()
        sources = [0, 3, 7]
        result = op.hitting_times(sources, 0.1, max_steps=400)
        assert isinstance(result, HittingTimes)
        for i, src in enumerate(sources):
            x = op.point_mass(src)
            expected = -1
            for t in range(401):
                if total_variation_distance(x, pi, validate=False) < 0.1:
                    expected = t
                    break
                x = op.step(x)
            assert result.times[i] == expected

    def test_agrees_with_mixing_time_from_source(self):
        op = make_operator("plain")
        result = op.hitting_times([0, 5], 0.15, max_steps=500)
        for i, src in enumerate([0, 5]):
            assert result.times[i] == mixing_time_from_source(op, src, 0.15, max_steps=500)

    def test_unconverged_rows_get_minus_one(self):
        g, _ = two_community_bridge(40, 6, 1, seed=2)
        op = TransitionOperator(g)
        result = op.hitting_times([0, 1], 1e-6, max_steps=3)
        assert np.all(result.times == -1)
        assert np.all(result.final_distances >= 1e-6)

    def test_epsilon_validation(self):
        op = make_operator("plain")
        with pytest.raises(ValueError):
            op.hitting_times([0], 0.0)
        with pytest.raises(ValueError):
            op.hitting_times([0], 1.5)

    def test_mixing_time_from_source_error_carries_distance(self):
        g, _ = two_community_bridge(40, 6, 1, seed=2)
        op = TransitionOperator(g)
        with pytest.raises(ConvergenceError) as err:
            mixing_time_from_source(op, 0, 1e-5, max_steps=3)
        assert err.value.partial is not None
        assert err.value.partial >= 1e-5


# ----------------------------------------------------------------------
# Batched distance + block sizing helpers
# ----------------------------------------------------------------------
class TestBatchedDistance:
    def test_rows_match_scalar_tvd(self):
        rng = np.random.default_rng(3)
        block = rng.dirichlet(np.ones(30), size=6)
        ref = rng.dirichlet(np.ones(30))
        out = total_variation_to_reference(block, ref, validate=False)
        for i in range(6):
            assert out[i] == total_variation_distance(block[i], ref, validate=False)

    def test_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            total_variation_to_reference(np.ones(4) / 4, np.ones(4) / 4)
        with pytest.raises(ValueError, match="column"):
            total_variation_to_reference(
                np.ones((2, 4)) / 4, np.ones(5) / 5, validate=False
            )
        with pytest.raises(ValueError):
            total_variation_to_reference(np.ones((2, 4)), np.ones(4) / 4)


class TestResolveBlockSize:
    def test_explicit_wins(self):
        assert resolve_block_size(10_000, 7) == 7

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            resolve_block_size(100, 0)
        with pytest.raises(ValueError):
            resolve_block_size(100, block_size=None, memory_budget_bytes=0)

    def test_budget_sizing(self):
        # 1000 states * 8 bytes = 8 kB per row; 80 kB budget → 10 rows.
        assert resolve_block_size(1000, None, memory_budget_bytes=80_000) == 10
        # Tiny budget floors at one row.
        assert resolve_block_size(10**9, None) == 1
        # Small graphs cap at 1024 rows regardless of budget.
        assert resolve_block_size(10, None, memory_budget_bytes=DEFAULT_BLOCK_BYTES) == 1024

    @pytest.mark.parametrize("bad_states", [0, -1, -100])
    def test_rejects_degenerate_state_counts(self, bad_states):
        """A chain with no states has no rows to chunk — fail loudly
        instead of emitting a zero-row block shape."""
        with pytest.raises(ValueError):
            resolve_block_size(bad_states, None)
        with pytest.raises(ValueError):
            resolve_block_size(bad_states, 4)

    def test_rejects_non_integral_override(self):
        with pytest.raises(ValueError):
            resolve_block_size(100, 2.5)

    def test_integral_float_override_accepted(self):
        # np.int64 / integral floats normalise; only true fractions raise.
        assert resolve_block_size(100, 8.0) == 8
        assert resolve_block_size(100, np.int64(8)) == 8

    @pytest.mark.parametrize("bad", [-1, -7])
    def test_rejects_negative_override(self, bad):
        with pytest.raises(ValueError):
            resolve_block_size(100, bad)

    def test_budget_smaller_than_one_row_clamps_to_one(self):
        # One row needs 8*n bytes; any positive budget below that still
        # yields a single-row chunk, never zero.
        assert resolve_block_size(1000, None, memory_budget_bytes=1) == 1
        assert resolve_block_size(1000, None, memory_budget_bytes=7999) == 1


# ----------------------------------------------------------------------
# Integration: measure_mixing block_size pass-through
# ----------------------------------------------------------------------
class TestMeasureMixingBlockSize:
    def test_block_size_does_not_change_results(self):
        g = _er_graph()
        base = measure_mixing(g, [1, 4, 9], sources=12, seed=8)
        for bs in (1, 5, 12, 64):
            m = measure_mixing(g, [1, 4, 9], sources=12, seed=8, block_size=bs)
            assert np.array_equal(m.distances, base.distances)
