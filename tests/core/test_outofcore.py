"""Out-of-core operator path: bit-identity against the in-memory oracle.

The contract pinned here is the strongest the repo makes: the striped
transition matrix and the ``streaming`` backend must reproduce the
scipy-constructed operator **bit for bit** — across laziness, stripe
budgets, workers, execution modes, and checkpoint resume.  Tolerances
would hide accumulation-order drift, so every comparison is
``np.array_equal``.
"""

import numpy as np
import pytest

from repro.core.backends import get_backend, stripe_bounds
from repro.core.outofcore import StripedTransitionMatrix
from repro.core.parallel import describe_operator, parallel_backend_available
from repro.core.runtime import ExecutionPolicy
from repro.core.walks import TransitionOperator
from repro.graph import open_csr, save_csr

needs_pool = pytest.mark.skipif(
    not parallel_backend_available(),
    reason="fork + shared-memory backend unavailable",
)


@pytest.fixture()
def mapped_pair(er_medium, tmp_path):
    """The same graph twice: in memory and as a mapped container."""
    path = tmp_path / "g.csr"
    save_csr(er_medium, path)
    return er_medium, open_csr(path)


@pytest.mark.parametrize("laziness", [0.0, 0.25])
class TestStripeIdentity:
    def test_stripes_match_scipy_csc(self, mapped_pair, laziness):
        """Every stripe equals the same slice of scipy's ``tocsc()``."""
        graph, mapped = mapped_pair
        striped = StripedTransitionMatrix(mapped, laziness=laziness)
        reference = TransitionOperator(graph, laziness=laziness).matrix().tocsc()
        n = graph.num_nodes
        for budget in (256, 4096, 1 << 20):
            bounds = stripe_bounds(striped.csc_indptr, budget)
            assert bounds[0] == 0 and bounds[-1] == n
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                local_indptr, rows, vals = striped.csc_stripe(lo, hi)
                ref_indptr = reference.indptr[lo:hi + 1] - reference.indptr[lo]
                s0, s1 = reference.indptr[lo], reference.indptr[hi]
                assert np.array_equal(local_indptr, ref_indptr)
                assert np.array_equal(rows, reference.indices[s0:s1])
                # Bit-for-bit, not approx: the values must be the very
                # float64 numbers scipy stores.
                assert np.array_equal(vals, reference.data[s0:s1])

    def test_rmatmul_matches_scipy(self, mapped_pair, laziness):
        graph, mapped = mapped_pair
        striped = StripedTransitionMatrix(mapped, laziness=laziness)
        scipy_matrix = TransitionOperator(graph, laziness=laziness).matrix()
        rng = np.random.default_rng(11)
        block = rng.random((5, graph.num_nodes))
        assert np.array_equal(block @ striped, block @ scipy_matrix)
        vec = rng.random(graph.num_nodes)
        assert np.array_equal(vec @ striped, vec @ scipy_matrix)


@pytest.mark.parametrize("laziness", [0.0, 0.25])
@pytest.mark.parametrize("budget", [None, 2048, 1 << 20])
def test_streaming_backend_bit_identical(mapped_pair, laziness, budget):
    """Streaming sweeps equal the numpy oracle at every stripe budget —
    on the in-memory operator and on the mapped one."""
    graph, mapped = mapped_pair
    sources = np.arange(0, graph.num_nodes, 3, dtype=np.int64)
    walks = [1, 2, 5, 9]
    oracle = TransitionOperator(graph, laziness=laziness).variation_curves(
        sources, walks
    )
    policy = ExecutionPolicy(backend="streaming", memory_budget=budget)
    for operand in mapped_pair:
        op = TransitionOperator(operand, laziness=laziness)
        assert np.array_equal(op.variation_curves(sources, walks, policy=policy), oracle)


def test_hitting_times_bit_identical(mapped_pair):
    graph, mapped = mapped_pair
    sources = np.arange(0, graph.num_nodes, 5, dtype=np.int64)
    oracle = TransitionOperator(graph).hitting_times(sources, 0.2, max_steps=40)
    got = TransitionOperator(mapped).hitting_times(
        sources,
        0.2,
        max_steps=40,
        policy=ExecutionPolicy(backend="streaming", memory_budget=2048),
    )
    assert np.array_equal(oracle.times, got.times)
    assert np.array_equal(oracle.final_distances, got.final_distances)


def test_streaming_prepare_rejects_nothing_small(mapped_pair):
    """The backend handles a single-stripe matrix (budget >= nnz)."""
    _graph, mapped = mapped_pair
    striped = StripedTransitionMatrix(mapped)
    step = get_backend("streaming").prepare(striped, memory_budget=1 << 30)
    x = np.eye(3, mapped.num_nodes)
    assert np.array_equal(step(x), x @ striped)


class TestDescribeAndPublish:
    def test_mmap_kind(self, mapped_pair):
        _graph, mapped = mapped_pair
        op = TransitionOperator(mapped, laziness=0.1)
        described = describe_operator(op)
        assert described is not None
        kind, matrix, extras = described
        assert kind == "mmap"
        assert matrix.path is not None and extras == {}

    def test_anonymous_striped_not_published(self, er_medium):
        """A striped matrix without a backing container stays serial."""
        op = TransitionOperator(er_medium)
        op._matrix = StripedTransitionMatrix(er_medium)
        assert describe_operator(op) is None

    @needs_pool
    def test_worker_rebuild_bit_identical(self, mapped_pair):
        from repro.core.parallel import _worker_operator, publish_operator

        graph, mapped = mapped_pair
        op = TransitionOperator(mapped)
        oracle_op = TransitionOperator(graph)
        reference = oracle_op.stationary()
        sources = np.arange(0, graph.num_nodes, 4, dtype=np.int64)
        walks = [1, 3, 7]
        kind, matrix, _extras = describe_operator(op)
        with publish_operator(kind, matrix, reference) as handle:
            worker_op, worker_ref = _worker_operator(handle.payload)
            assert np.array_equal(worker_ref, reference)
            got = worker_op.variation_curves(
                sources,
                walks,
                reference=worker_ref,
                policy=ExecutionPolicy(backend="streaming", memory_budget=4096),
            )
        assert np.array_equal(got, oracle_op.variation_curves(sources, walks))


@needs_pool
@pytest.mark.parametrize("execution", ["processes", "threads"])
def test_parallel_sweep_bit_identical(mapped_pair, execution):
    graph, mapped = mapped_pair
    sources = np.arange(0, graph.num_nodes, 2, dtype=np.int64)
    walks = [1, 2, 6]
    oracle = TransitionOperator(graph).variation_curves(sources, walks)
    policy = ExecutionPolicy(
        workers=2, execution=execution, backend="streaming", memory_budget=4096
    )
    got = TransitionOperator(mapped).variation_curves(sources, walks, policy=policy)
    assert np.array_equal(got, oracle)


def test_checkpoint_resume_bit_identical(mapped_pair, tmp_path):
    """A streaming sweep checkpointed, interrupted, and resumed equals
    the uninterrupted oracle bit for bit."""
    graph, mapped = mapped_pair
    sources = np.arange(0, graph.num_nodes, 2, dtype=np.int64)
    walks = [1, 2, 6]
    oracle = TransitionOperator(graph).variation_curves(sources, walks)
    ckpt = tmp_path / "ckpt"
    first = TransitionOperator(mapped).variation_curves(
        sources,
        walks,
        policy=ExecutionPolicy(
            checkpoint_dir=ckpt, backend="streaming", memory_budget=4096
        ),
    )
    resumed = TransitionOperator(mapped).variation_curves(
        sources,
        walks,
        policy=ExecutionPolicy(
            checkpoint_dir=ckpt, resume=True, backend="streaming", memory_budget=4096
        ),
    )
    assert np.array_equal(first, oracle)
    assert np.array_equal(resumed, oracle)


def test_fingerprint_covers_graph_and_laziness(mapped_pair):
    _graph, mapped = mapped_pair
    a = StripedTransitionMatrix(mapped, laziness=0.0).fingerprint
    b = StripedTransitionMatrix(mapped, laziness=0.1).fingerprint
    c = StripedTransitionMatrix(mapped, laziness=0.0).fingerprint
    assert a == c and a != b


def test_memory_budget_policy_validation():
    with pytest.raises(Exception):
        ExecutionPolicy(memory_budget=0)
    with pytest.raises(Exception):
        ExecutionPolicy(memory_budget=-5)
    assert ExecutionPolicy(memory_budget=4096).memory_budget == 4096
