"""Serial == parallel, bit-for-bit (`repro.core.parallel`).

The shared-memory sweep runtime's whole contract is that ``workers`` is
*only* a speed knob: for every operator flavour, worker count, shard
boundary and ragged source count, the parallel output must be
``np.array_equal`` (no tolerance) to the serial block path.  This suite
pins that contract, plus the fallback rules that route back to the
serial path and the publish/attach plumbing itself.

The equivalence tests are skipped automatically on platforms without the
fork start method (the runtime itself falls back to serial there, so
there is nothing to compare).
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DirectedTransitionOperator,
    MarkovOperator,
    TransitionOperator,
    estimate_mixing_time,
    measure_mixing,
    originator_biased_curves,
    parallel_backend_available,
    resolve_workers,
)
from repro.core.parallel import (
    _ATTACHED,
    _shard,
    _worker_operator,
    describe_operator,
    maybe_parallel_evolve_block,
    maybe_parallel_hitting_times,
    maybe_parallel_variation_curves,
    publish_operator,
)
from tests.core.test_operators import ALL_KINDS, _er_graph, make_operator

needs_pool = pytest.mark.skipif(
    not parallel_backend_available(),
    reason="fork + shared-memory backend unavailable; runtime is serial here",
)

WORKER_COUNTS = [2, 4]


# ----------------------------------------------------------------------
# Worker-count resolution and fallback rules
# ----------------------------------------------------------------------
class TestResolveWorkers:
    @pytest.mark.parametrize("request_,expected", [(None, 1), (0, 1), (1, 1), (3, 3)])
    def test_explicit_counts(self, request_, expected):
        assert resolve_workers(request_) == expected

    def test_all_cores(self):
        count = resolve_workers(-1)
        assert count >= 1
        assert count == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [-2, -17])
    def test_below_minus_one_raises(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)


class TestFallbackRules:
    """Every ``maybe_parallel_*`` entry point must return ``None`` (serial
    path) instead of guessing when the pool cannot help."""

    def _call_curves(self, op, sources, workers):
        return maybe_parallel_variation_curves(
            op,
            np.asarray(sources, dtype=np.int64),
            np.asarray([0, 1, 2], dtype=np.int64),
            reference=op.stationary(),
            workers=workers,
        )

    @pytest.mark.parametrize("workers", [None, 0, 1])
    def test_serial_worker_counts_fall_back(self, workers):
        op = make_operator("plain")
        assert self._call_curves(op, [0, 1, 2, 3], workers) is None

    def test_single_source_falls_back(self):
        # One row cannot be sharded; the pool would be pure overhead.
        op = make_operator("plain")
        assert self._call_curves(op, [0], workers=4) is None

    def test_zero_sources_fall_back(self):
        # Empty shards never reach the pool — the runtime defers to the
        # serial path, which owns the (rejecting) empty-input contract.
        op = make_operator("plain")
        assert self._call_curves(op, [], workers=4) is None

    def test_zero_sources_behave_like_serial(self):
        # The public API contract for empty sources (an empty (0, w)
        # result) is identical with or without a workers request.
        op = make_operator("plain")
        serial = op.variation_curves([], [0, 1])
        pooled = op.variation_curves([], [0, 1], workers=4)
        assert serial.shape == pooled.shape == (0, 2)
        assert np.array_equal(serial, pooled)

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert not parallel_backend_available()
        op = make_operator("plain")
        assert self._call_curves(op, [0, 1, 2, 3], workers=4) is None

    def test_unknown_apply_block_falls_back(self):
        class Exotic(TransitionOperator):
            def _apply_block(self, block):
                return super()._apply_block(block)

        op = Exotic(_er_graph())
        assert describe_operator(op) is None
        assert self._call_curves(op, [0, 1, 2, 3], workers=4) is None

    def test_evolve_zero_steps_falls_back(self):
        op = make_operator("plain")
        block = op.point_mass_block([0, 1, 2, 3])
        assert maybe_parallel_evolve_block(op, block, 0, workers=4) is None

    def test_hitting_single_source_falls_back(self):
        op = make_operator("plain")
        out = maybe_parallel_hitting_times(
            op,
            np.asarray([0], dtype=np.int64),
            0.5,
            max_steps=10,
            reference=op.stationary(),
            workers=4,
        )
        assert out is None


class TestDescribeOperator:
    def test_kinds(self):
        assert describe_operator(make_operator("plain"))[0] == "csr"
        assert describe_operator(make_operator("lazy"))[0] == "csr"
        assert describe_operator(make_operator("weighted"))[0] == "csr"
        assert describe_operator(make_operator("directed"))[0] == "csr"
        for kind in ("teleport", "dangling"):
            name, _matrix, extras = describe_operator(make_operator(kind))
            assert name == "teleport"
            assert set(extras) == {"damping", "dangling"}

    def test_matrix_is_the_operators(self):
        op = make_operator("plain")
        _kind, matrix, _extras = describe_operator(op)
        assert np.array_equal(matrix.toarray(), op._matrix.toarray())


# ----------------------------------------------------------------------
# Publish / attach plumbing
# ----------------------------------------------------------------------
class TestPublishAttach:
    def test_roundtrip_views_match_source_arrays(self):
        op = make_operator("teleport")
        kind, matrix, extras = describe_operator(op)
        pi = op.stationary()
        handle = publish_operator(kind, matrix, pi, **extras)
        try:
            rebuilt, reference = _worker_operator(handle.payload)
            assert rebuilt.num_states == op.num_states
            assert np.array_equal(rebuilt._matrix.toarray(), matrix.toarray())
            assert np.array_equal(reference, pi)
            assert not reference.flags.writeable  # shared state is read-only
            # Same attached entry is reused (memoised per segment).
            again, _ = _worker_operator(handle.payload)
            assert again is rebuilt
            # The rebuilt operator reproduces the serial kernel exactly.
            block = op.point_mass_block([0, 1, 2])
            assert np.array_equal(rebuilt.step_block(block), op.step_block(block))
        finally:
            entry = _ATTACHED.pop(handle.payload.shm_name, None)
            if entry is not None:
                del entry  # drop views before closing the mapping
            handle.close()

    def test_sharding_is_contiguous_and_complete(self):
        sources = np.arange(23, dtype=np.int64)
        shards = _shard(sources, 4)
        assert np.array_equal(np.concatenate(shards), sources)
        assert all(s.size >= 1 for s in shards)


# ----------------------------------------------------------------------
# The contract: serial == parallel, bit-for-bit
# ----------------------------------------------------------------------
@needs_pool
class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_variation_curves(self, kind, workers):
        op = make_operator(kind)
        sources = np.arange(10) % op.num_states
        walks = [0, 1, 3, 7, 12]
        serial = op.variation_curves(sources, walks)
        parallel = op.variation_curves(sources, walks, workers=workers)
        assert np.array_equal(serial, parallel), f"{kind}: parallel curves drifted"

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_hitting_times(self, kind, workers):
        op = make_operator(kind)
        sources = np.arange(8) % op.num_states
        serial = op.hitting_times(sources, 0.25, max_steps=40)
        parallel = op.hitting_times(sources, 0.25, max_steps=40, workers=workers)
        assert np.array_equal(serial.times, parallel.times)
        assert np.array_equal(serial.final_distances, parallel.final_distances)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_evolve_block(self, kind):
        op = make_operator(kind)
        block = op.point_mass_block(list(range(min(6, op.num_states))))
        serial = op.evolve_block(block.copy(), 9)
        parallel = op.evolve_block(block.copy(), 9, workers=2)
        assert np.array_equal(serial, parallel)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_chunk_boundaries_inside_workers(self, workers):
        """Worker-side chunking (block_size) composes with sharding."""
        op = make_operator("plain")
        sources = np.arange(11) % op.num_states
        walks = [0, 2, 5]
        serial = op.variation_curves(sources, walks, block_size=3)
        parallel = op.variation_curves(sources, walks, block_size=3, workers=workers)
        assert np.array_equal(serial, parallel)

    @pytest.mark.parametrize("count", [2, 3, 16, "n"])
    def test_ragged_source_counts(self, count):
        """Shard counts that do not divide evenly (including every node
        and more sources than workers*overshard) stay bit-identical."""
        op = make_operator("plain")
        n = op.num_states
        if count == "n":
            sources = np.arange(n)
        else:
            sources = np.arange(count) % n
        walks = [0, 1, 4]
        serial = op.variation_curves(sources, walks)
        parallel = op.variation_curves(sources, walks, workers=3)
        assert np.array_equal(serial, parallel)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_duplicate_and_unsorted_sources(self, workers):
        op = make_operator("lazy")
        sources = np.asarray([5, 0, 5, 2, 2, 7, 0], dtype=np.int64)
        walks = [1, 2, 6]
        serial = op.variation_curves(sources, walks)
        parallel = op.variation_curves(sources, walks, workers=workers)
        assert np.array_equal(serial, parallel)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_originator_biased_curves(self, workers):
        graph = _er_graph()
        sources = list(range(9))
        walks = [0, 1, 3, 7]
        serial = originator_biased_curves(graph, sources, 0.2, walks)
        parallel = originator_biased_curves(
            graph, sources, 0.2, walks, workers=workers
        )
        assert np.array_equal(serial, parallel)

    @pytest.mark.parametrize("kind", ["plain", "teleport"])
    @settings(max_examples=8, deadline=None)
    @given(data=st.data())
    def test_equivalence_property(self, kind, data):
        """Hypothesis sweep over sources / walk grids / worker counts."""
        op = make_operator(kind)
        n = op.num_states
        sources = data.draw(
            st.lists(st.integers(0, n - 1), min_size=2, max_size=12),
            label="sources",
        )
        walks = sorted(
            data.draw(
                st.sets(st.integers(0, 10), min_size=1, max_size=4),
                label="walks",
            )
        )
        workers = data.draw(st.sampled_from([2, 3, 4]), label="workers")
        serial = op.variation_curves(sources, walks)
        parallel = op.variation_curves(sources, walks, workers=workers)
        assert np.array_equal(serial, parallel)


# ----------------------------------------------------------------------
# End-to-end through the measurement layer
# ----------------------------------------------------------------------
@needs_pool
class TestMeasurementLayer:
    def test_measure_mixing_workers(self):
        graph = _er_graph()
        serial = measure_mixing(graph, [1, 2, 5, 10], sources=40, seed=3)
        parallel = measure_mixing(graph, [1, 2, 5, 10], sources=40, seed=3, workers=2)
        assert np.array_equal(serial.sources, parallel.sources)
        assert np.array_equal(serial.distances, parallel.distances)

    def test_estimate_mixing_time_workers(self):
        graph = _er_graph()
        serial = estimate_mixing_time(graph, 0.2, sources=30, seed=3, max_steps=100)
        parallel = estimate_mixing_time(
            graph, 0.2, sources=30, seed=3, max_steps=100, workers=2
        )
        assert serial.walk_length == parallel.walk_length
        assert np.array_equal(serial.per_source, parallel.per_source)

    def test_sybilrank_workers(self):
        from repro.sybil.scenario import attach_sybil_region, random_sybil_region
        from repro.sybil.sybilrank import sybilrank

        honest = _er_graph()
        scenario = attach_sybil_region(
            honest, random_sybil_region(20, seed=1), 6, seed=2
        )
        seeds = [0, 1, 2]
        serial = sybilrank(scenario, seeds)
        parallel = sybilrank(scenario, seeds, workers=2)
        assert np.array_equal(serial.scores, parallel.scores)

    def test_directed_curves_workers(self):
        from repro.core import directed_variation_curves

        op = make_operator("teleport")
        graph = op.graph
        sources = list(range(12))
        walks = [1, 2, 5]
        serial = directed_variation_curves(graph, sources, walks, damping=0.85)
        parallel = directed_variation_curves(
            graph, sources, walks, damping=0.85, workers=2
        )
        assert np.array_equal(serial, parallel)


# ----------------------------------------------------------------------
# Tier-2 stress: the paper-scale sweep shape (1000 sources)
# ----------------------------------------------------------------------
@needs_pool
@pytest.mark.slow
class TestStress:
    def test_thousand_source_sweep_identical(self):
        op = TransitionOperator(_er_graph())
        rng = np.random.default_rng(7)
        sources = rng.integers(0, op.num_states, size=1000)
        walks = [1, 2, 5, 10, 20]
        serial = op.variation_curves(sources, walks)
        parallel = op.variation_curves(sources, walks, workers=4)
        assert np.array_equal(serial, parallel)


def test_markov_operator_abc_untouched():
    """The workers kwarg must not change the abstract surface."""
    assert MarkovOperator._apply_block is not None
    assert isinstance(make_operator("directed"), DirectedTransitionOperator)
