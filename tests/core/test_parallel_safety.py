"""Exception safety of the shared-memory publication path.

A failed publish or attach must never strand a segment in ``/dev/shm``
(the parent would leak named shared memory until reboot) or leave a
half-built entry in the worker attach cache.  These tests force failures
at each stage by monkeypatching the module-level helpers the paths were
factored through, and assert the segment namespace is clean afterwards.
"""

import os
from pathlib import Path

import numpy as np
import pytest
from scipy.sparse import random as sparse_random

from repro.core.parallel import (
    _ATTACHED,
    _attach,
    _build_views,
    _copy_fields,
    publish_operator,
)

_SHM_DIR = Path("/dev/shm")

needs_shm_dir = pytest.mark.skipif(
    not _SHM_DIR.is_dir(), reason="/dev/shm not present on this platform"
)


def _matrix(n=12, seed=3):
    m = sparse_random(n, n, density=0.4, random_state=np.random.default_rng(seed))
    return m.tocsr()


def _segments():
    return set(os.listdir(_SHM_DIR))


class _CopyBoom(RuntimeError):
    pass


@needs_shm_dir
class TestPublishFailure:
    def test_copy_failure_unlinks_segment(self, monkeypatch):
        before = _segments()

        def exploding_copy(shm, fields, named):
            raise _CopyBoom("simulated copy failure")

        monkeypatch.setattr("repro.core.parallel._copy_fields", exploding_copy)
        with pytest.raises(_CopyBoom):
            publish_operator("csr", _matrix(), np.full(12, 1 / 12))
        assert _segments() == before  # nothing stranded

    def test_partial_copy_failure_unlinks_segment(self, monkeypatch):
        """Failure midway through the copy (not before it) also cleans up."""
        before = _segments()
        original = _copy_fields
        calls = {"n": 0}

        def flaky_copy(shm, fields, named):
            calls["n"] += 1
            original(shm, fields[:1], named[:1])  # copy one field, then die
            raise _CopyBoom("simulated mid-copy failure")

        monkeypatch.setattr("repro.core.parallel._copy_fields", flaky_copy)
        with pytest.raises(_CopyBoom):
            publish_operator("csr", _matrix())
        assert calls["n"] == 1
        assert _segments() == before

    def test_successful_publish_cleans_up_on_close(self):
        before = _segments()
        handle = publish_operator("csr", _matrix(), np.full(12, 1 / 12))
        assert len(_segments()) == len(before) + 1
        handle.close()
        assert _segments() == before

    def test_context_manager_cleans_up_on_body_exception(self):
        before = _segments()
        with pytest.raises(_CopyBoom):
            with publish_operator("csr", _matrix()):
                raise _CopyBoom("body failure")
        assert _segments() == before

    def test_close_is_idempotent(self):
        handle = publish_operator("csr", _matrix())
        handle.close()
        handle.close()  # second close must not raise


@needs_shm_dir
class TestAttachFailure:
    def test_view_failure_detaches_and_leaves_parent_owner(self, monkeypatch):
        before = _segments()
        handle = publish_operator("csr", _matrix(), np.full(12, 1 / 12))
        try:
            payload = handle.payload

            def exploding_views(shm, fields):
                raise _CopyBoom("simulated view failure")

            monkeypatch.setattr("repro.core.parallel._build_views", exploding_views)
            with pytest.raises(_CopyBoom):
                _attach(payload)
            # No half-built cache entry; the parent still owns the name.
            assert payload.shm_name not in _ATTACHED
            assert any(payload.shm_name.lstrip("/") in s for s in _segments())
        finally:
            handle.close()
        assert _segments() == before

    def test_attach_succeeds_after_earlier_failure(self, monkeypatch):
        """A failed attach must not poison later attaches to the name."""
        handle = publish_operator("csr", _matrix(), np.full(12, 1 / 12))
        try:
            payload = handle.payload
            boom = {"armed": True}
            original = _build_views

            def flaky_views(shm, fields):
                if boom["armed"]:
                    boom["armed"] = False
                    raise _CopyBoom("first attach fails")
                return original(shm, fields)

            monkeypatch.setattr("repro.core.parallel._build_views", flaky_views)
            with pytest.raises(_CopyBoom):
                _attach(payload)
            _shm, views, _cache = _attach(payload)  # second try succeeds
            assert "data" in views and "reference" in views
            np.testing.assert_array_equal(
                views["reference"], np.full(12, 1 / 12)
            )
        finally:
            _ATTACHED.pop(handle.payload.shm_name, None)
            handle.close()


@needs_shm_dir
def test_no_stray_segments_after_parallel_sweep():
    """End-to-end: a real pooled sweep leaves /dev/shm exactly as found."""
    from repro.core import parallel_backend_available
    from tests.core.test_operators import make_operator

    if not parallel_backend_available():
        pytest.skip("no pool backend")
    before = _segments()
    op = make_operator("plain")
    sources = np.arange(op.num_states, dtype=np.int64)
    op.variation_curves(sources, [1, 3], block_size=4, workers=2)
    assert _segments() == before
