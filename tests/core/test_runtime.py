"""Unit tests for the fault-tolerant runtime (:mod:`repro.core.runtime`).

Covers the pieces in isolation — :class:`ExecutionPolicy` validation,
the :func:`as_policy` legacy-kwarg bridge, content-addressed sweep
fingerprints, the :class:`CheckpointStore` (roundtrip plus every
corruption avenue), shard planning, and :func:`run_sharded`'s serial /
checkpoint bookkeeping.  Pool-backed crash/timeout/resume behaviour
lives in ``tests/core/test_fault_tolerance.py``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

import repro.core.runtime as runtime
from repro.core.runtime import (
    DEFAULT_POLICY,
    CheckpointStore,
    ExecutionPolicy,
    as_policy,
    run_sharded,
    sweep_fingerprint,
)
from repro.errors import CheckpointCorruption, ConfigurationError, RuntimeFailure


# ----------------------------------------------------------------------
# ExecutionPolicy
# ----------------------------------------------------------------------
class TestExecutionPolicy:
    def test_defaults(self):
        p = ExecutionPolicy()
        assert p.workers is None
        assert p.block_size is None
        assert p.max_retries == 2
        assert p.shard_timeout is None
        assert p.checkpoint_dir is None
        assert p.resume is True
        assert p.telemetry is False

    def test_frozen(self):
        with pytest.raises(Exception):
            ExecutionPolicy().workers = 4

    def test_default_policy_is_singleton_default(self):
        assert DEFAULT_POLICY == ExecutionPolicy()

    @pytest.mark.parametrize("bad", [True, False, 2.5, "two", [2]])
    def test_workers_rejects_non_int(self, bad):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(workers=bad)

    def test_workers_rejects_below_minus_one(self):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(workers=-2)

    @pytest.mark.parametrize("ok", [None, -1, 0, 1, 2, np.int64(4)])
    def test_workers_accepts_valid(self, ok):
        assert ExecutionPolicy(workers=ok).workers == ok

    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "big"])
    def test_block_size_rejects_invalid(self, bad):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(block_size=bad)

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "none"])
    def test_max_retries_rejects_invalid(self, bad):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(max_retries=bad)

    def test_max_retries_zero_allowed(self):
        assert ExecutionPolicy(max_retries=0).max_retries == 0

    @pytest.mark.parametrize("bad", [0, -3.0, "soon", float("nan")])
    def test_shard_timeout_rejects_invalid(self, bad):
        with pytest.raises(ConfigurationError):
            ExecutionPolicy(shard_timeout=bad)

    def test_shard_timeout_coerced_to_float(self):
        p = ExecutionPolicy(shard_timeout=5)
        assert isinstance(p.shard_timeout, float)
        assert p.shard_timeout == 5.0

    def test_checkpoint_dir_accepts_path_objects(self, tmp_path):
        p = ExecutionPolicy(checkpoint_dir=tmp_path)
        assert isinstance(p.checkpoint_dir, str)
        assert p.checkpoint_dir == str(tmp_path)


# ----------------------------------------------------------------------
# as_policy: the legacy-kwarg bridge
# ----------------------------------------------------------------------
class TestAsPolicy:
    def test_policy_passthrough_verbatim(self):
        p = ExecutionPolicy(workers=3)
        assert as_policy(p) is p

    def test_neither_gives_default_singleton(self):
        assert as_policy() is DEFAULT_POLICY
        assert as_policy(None) is DEFAULT_POLICY

    def test_legacy_kwargs_emit_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="workers=/block_size="):
            p = as_policy(workers=2, block_size=16)
        assert p.workers == 2
        assert p.block_size == 16

    def test_legacy_block_size_alone_warns(self):
        with pytest.warns(DeprecationWarning):
            p = as_policy(block_size=8)
        assert p.block_size == 8
        assert p.workers is None

    def test_both_raise_configuration_error(self):
        with pytest.raises(ConfigurationError, match="not both"):
            as_policy(ExecutionPolicy(), workers=2)
        with pytest.raises(ConfigurationError, match="not both"):
            as_policy(ExecutionPolicy(), block_size=4)

    def test_non_policy_object_rejected(self):
        with pytest.raises(ConfigurationError, match="ExecutionPolicy"):
            as_policy({"workers": 2})


# ----------------------------------------------------------------------
# sweep_fingerprint
# ----------------------------------------------------------------------
class TestSweepFingerprint:
    def test_deterministic(self):
        a = np.arange(12, dtype=np.float64)
        assert sweep_fingerprint("k", a, 5, "s") == sweep_fingerprint("k", a.copy(), 5, "s")

    def test_sensitive_to_kind(self):
        a = np.arange(4)
        assert sweep_fingerprint("evolve", a) != sweep_fingerprint("curves", a)

    def test_sensitive_to_array_values_and_dtype(self):
        a = np.arange(4, dtype=np.float64)
        b = a.copy()
        b[0] += 1e-12
        assert sweep_fingerprint("k", a) != sweep_fingerprint("k", b)
        assert sweep_fingerprint("k", a) != sweep_fingerprint("k", a.astype(np.float32))

    def test_sensitive_to_shape(self):
        a = np.zeros(6)
        assert sweep_fingerprint("k", a) != sweep_fingerprint("k", a.reshape(2, 3))

    def test_arbitrary_precision_int(self):
        entropy = np.random.SeedSequence((1 << 127) + 9157).entropy
        assert entropy.bit_length() > 64  # the case plain int64 would truncate
        f1 = sweep_fingerprint("k", entropy)
        f2 = sweep_fingerprint("k", entropy)
        f3 = sweep_fingerprint("k", entropy + 1)
        assert f1 == f2 != f3

    def test_type_tags_disambiguate(self):
        # 1 vs 1.0 vs "1" must all hash differently.
        assert len({sweep_fingerprint("k", v) for v in (1, 1.0, "1")}) == 3

    def test_none_and_nesting(self):
        assert sweep_fingerprint("k", None) != sweep_fingerprint("k", 0)
        assert sweep_fingerprint("k", [1, [2, 3]]) != sweep_fingerprint("k", [1, 2, 3])

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="fingerprint"):
            sweep_fingerprint("k", object())

    def test_is_hex_digest(self):
        fp = sweep_fingerprint("k", 1)
        assert len(fp) == 64
        int(fp, 16)


# ----------------------------------------------------------------------
# CheckpointStore
# ----------------------------------------------------------------------
FP = sweep_fingerprint("unit-test", np.arange(3), 42)


def _store(tmp_path, total=10, fingerprint=FP, kind="unit"):
    return CheckpointStore(tmp_path, kind=kind, fingerprint=fingerprint, total=total)


class TestCheckpointStoreRoundtrip:
    def test_single_array_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        value = np.linspace(0.0, 1.0, 8).reshape(2, 4)
        store.save(0, 2, value)
        loaded = store.load()
        assert list(loaded) == [(0, 2)]
        np.testing.assert_array_equal(loaded[(0, 2)], value)
        assert loaded[(0, 2)].dtype == value.dtype

    def test_tuple_result_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        value = (np.arange(5), np.ones((2, 2)))
        store.save(3, 7, value)
        loaded = store.load()
        got = loaded[(3, 7)]
        assert isinstance(got, tuple) and len(got) == 2
        np.testing.assert_array_equal(got[0], value[0])
        np.testing.assert_array_equal(got[1], value[1])

    def test_multiple_shards(self, tmp_path):
        store = _store(tmp_path)
        store.save(0, 4, np.zeros(4))
        store.save(4, 10, np.ones(6))
        assert sorted(store.load()) == [(0, 4), (4, 10)]

    def test_save_returns_bytes_written(self, tmp_path):
        store = _store(tmp_path)
        written = store.save(0, 1, np.zeros(100))
        assert written > 0

    def test_clear_discards_all_shards(self, tmp_path):
        store = _store(tmp_path)
        store.save(0, 4, np.zeros(4))
        store.clear()
        assert store.load() == {}

    def test_empty_directory_loads_empty(self, tmp_path):
        assert _store(tmp_path).load() == {}

    def test_sweeps_do_not_collide(self, tmp_path):
        a = _store(tmp_path, fingerprint=sweep_fingerprint("a", 1))
        b = _store(tmp_path, fingerprint=sweep_fingerprint("b", 2))
        a.save(0, 2, np.zeros(2))
        assert b.load() == {}

    def test_no_temp_files_after_save(self, tmp_path):
        store = _store(tmp_path)
        store.save(0, 2, np.zeros(2))
        assert not list(Path(store.directory).glob("*.tmp"))


class TestCheckpointCorruption:
    def _one_shard(self, tmp_path):
        store = _store(tmp_path)
        store.save(0, 4, np.arange(4, dtype=np.float64))
        (path,) = Path(store.directory).glob("shard-*.npz")
        return store, path

    def test_tampered_payload_fails_digest(self, tmp_path):
        store, path = self._one_shard(tmp_path)
        with np.load(path, allow_pickle=False) as archive:
            stored = {name: archive[name] for name in archive.files}
        tampered = np.asarray(stored["part0"]).copy()
        tampered[0] += 1.0  # silently wrong numbers, archive still readable
        stored["part0"] = tampered
        with open(path, "wb") as fh:
            np.savez(fh, **stored)
        with pytest.raises(CheckpointCorruption, match="digest"):
            store.load()

    def test_truncation_is_unreadable(self, tmp_path):
        store, path = self._one_shard(tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointCorruption, match="unreadable"):
            store.load()

    def test_garbage_file_is_unreadable(self, tmp_path):
        store, path = self._one_shard(tmp_path)
        path.write_bytes(b"not an npz archive")
        with pytest.raises(CheckpointCorruption, match="unreadable"):
            store.load()

    def test_foreign_fingerprint_rejected(self, tmp_path):
        store, path = self._one_shard(tmp_path)
        foreign = _store(tmp_path, fingerprint=sweep_fingerprint("other", 9))
        foreign.directory.mkdir(parents=True, exist_ok=True)
        os.replace(path, foreign.directory / path.name)
        # the foreign store's meta.json is absent; the shard's embedded
        # fingerprint still doesn't match.
        with pytest.raises(CheckpointCorruption, match="different sweep"):
            foreign.load()

    def test_renamed_shard_fails_filename_check(self, tmp_path):
        store, path = self._one_shard(tmp_path)
        os.replace(path, path.with_name("shard-0000000004-0000000008.npz"))
        with pytest.raises(CheckpointCorruption):
            store.load()

    def test_bounds_outside_sweep_rejected(self, tmp_path):
        big = _store(tmp_path, total=100)
        big.save(40, 60, np.zeros(20))
        (path,) = Path(big.directory).glob("shard-*.npz")
        # Same fingerprint but a smaller sweep: bounds fall outside.
        small = _store(tmp_path, total=10)
        small.directory.mkdir(parents=True, exist_ok=True)
        os.replace(path, small.directory / path.name)
        with pytest.raises(CheckpointCorruption, match="outside"):
            small.load()

    def test_overlapping_shards_rejected(self, tmp_path):
        store = _store(tmp_path)
        store.save(0, 4, np.zeros(4))
        store.save(2, 6, np.zeros(4))
        with pytest.raises(CheckpointCorruption, match="overlapping"):
            store.load()

    def test_meta_from_different_sweep_rejected(self, tmp_path):
        store, _path = self._one_shard(tmp_path)
        meta = Path(store.directory) / "meta.json"
        text = meta.read_text().replace('"total": 10', '"total": 99')
        meta.write_text(text)
        with pytest.raises(CheckpointCorruption, match="metadata mismatch"):
            store.load()

    def test_corrupt_meta_json_rejected(self, tmp_path):
        store, _path = self._one_shard(tmp_path)
        (Path(store.directory) / "meta.json").write_text("{ not json")
        with pytest.raises(CheckpointCorruption, match="metadata"):
            store.load()

    def test_corruption_is_a_runtime_failure(self, tmp_path):
        store, path = self._one_shard(tmp_path)
        path.write_bytes(b"junk")
        with pytest.raises(RuntimeFailure):
            store.load()


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
class TestShardPlanning:
    def test_missing_ranges_empty_done(self):
        assert runtime._missing_ranges(10, []) == [(0, 10)]

    def test_missing_ranges_gaps(self):
        assert runtime._missing_ranges(10, [(2, 4), (6, 8)]) == [
            (0, 2),
            (4, 6),
            (8, 10),
        ]

    def test_missing_ranges_fully_done(self):
        assert runtime._missing_ranges(6, [(0, 3), (3, 6)]) == []

    def test_missing_ranges_unsorted_input(self):
        assert runtime._missing_ranges(10, [(6, 8), (0, 2)]) == [(2, 6), (8, 10)]

    def test_split_ranges_covers_gaps_exactly(self):
        gaps = [(0, 7), (9, 20)]
        shards = runtime._split_ranges(gaps, 20, 5)
        # Reassemble: shards tile the gaps exactly, in order.
        cursor = {lo: hi for lo, hi in shards}
        covered = []
        for lo, hi in gaps:
            at = lo
            while at < hi:
                nxt = cursor[at]
                covered.append((at, nxt))
                at = nxt
            assert at == hi
        assert sorted(covered) == sorted(shards)

    def test_split_ranges_width_targets_total_over_shards(self):
        shards = runtime._split_ranges([(0, 100)], 100, 4)
        assert len(shards) == 4
        assert all(hi - lo == 25 for lo, hi in shards)

    def test_split_ranges_degenerate_target(self):
        assert runtime._split_ranges([(0, 3)], 3, 0) == [(0, 3)]


# ----------------------------------------------------------------------
# run_sharded: serial path + checkpoint bookkeeping (no pool involved)
# ----------------------------------------------------------------------
def _serial_rows(lo: int, hi: int) -> np.ndarray:
    return np.arange(lo, hi, dtype=np.float64) ** 2


class TestRunShardedSerial:
    def test_serial_covers_total(self):
        out = run_sharded(
            kind="unit",
            total=11,
            policy=DEFAULT_POLICY,
            workers=1,
            make_task=None,
            serial_run=_serial_rows,
            use_pool=False,
        )
        np.testing.assert_array_equal(
            np.concatenate(out), _serial_rows(0, 11)
        )

    def test_checkpoints_written_and_reused(self, tmp_path):
        policy = ExecutionPolicy(checkpoint_dir=str(tmp_path))
        fp = sweep_fingerprint("unit", 11)
        calls = []

        def counting(lo, hi):
            calls.append((lo, hi))
            return _serial_rows(lo, hi)

        first = run_sharded(
            kind="unit", total=11, policy=policy, workers=1,
            make_task=None, serial_run=counting, fingerprint=fp, use_pool=False,
        )
        assert calls  # computed something
        calls.clear()
        second = run_sharded(
            kind="unit", total=11, policy=policy, workers=1,
            make_task=None, serial_run=counting, fingerprint=fp, use_pool=False,
        )
        assert calls == []  # fully resumed from disk
        np.testing.assert_array_equal(
            np.concatenate(first), np.concatenate(second)
        )

    def test_resume_false_recomputes(self, tmp_path):
        policy = ExecutionPolicy(checkpoint_dir=str(tmp_path))
        fp = sweep_fingerprint("unit", 8)
        run_sharded(
            kind="unit", total=8, policy=policy, workers=1,
            make_task=None, serial_run=_serial_rows, fingerprint=fp, use_pool=False,
        )
        calls = []

        def counting(lo, hi):
            calls.append((lo, hi))
            return _serial_rows(lo, hi)

        no_resume = ExecutionPolicy(checkpoint_dir=str(tmp_path), resume=False)
        run_sharded(
            kind="unit", total=8, policy=no_resume, workers=1,
            make_task=None, serial_run=counting, fingerprint=fp, use_pool=False,
        )
        assert sum(hi - lo for lo, hi in calls) == 8  # everything recomputed

    def test_partial_checkpoint_computes_only_missing(self, tmp_path):
        policy = ExecutionPolicy(checkpoint_dir=str(tmp_path))
        fp = sweep_fingerprint("unit", 10)
        store = CheckpointStore(tmp_path, kind="unit", fingerprint=fp, total=10)
        store.save(0, 6, _serial_rows(0, 6))
        calls = []

        def counting(lo, hi):
            calls.append((lo, hi))
            return _serial_rows(lo, hi)

        out = run_sharded(
            kind="unit", total=10, policy=policy, workers=1,
            make_task=None, serial_run=counting, fingerprint=fp, use_pool=False,
        )
        assert all(lo >= 6 for lo, hi in calls)
        assert sum(hi - lo for lo, hi in calls) == 4
        np.testing.assert_array_equal(np.concatenate(out), _serial_rows(0, 10))

    def test_corrupted_checkpoint_raises(self, tmp_path):
        policy = ExecutionPolicy(checkpoint_dir=str(tmp_path))
        fp = sweep_fingerprint("unit", 6)
        store = CheckpointStore(tmp_path, kind="unit", fingerprint=fp, total=6)
        store.save(0, 6, _serial_rows(0, 6))
        (path,) = Path(store.directory).glob("shard-*.npz")
        path.write_bytes(b"scrambled")
        with pytest.raises(CheckpointCorruption):
            run_sharded(
                kind="unit", total=6, policy=policy, workers=1,
                make_task=None, serial_run=_serial_rows, fingerprint=fp,
                use_pool=False,
            )

    def test_no_fingerprint_disables_checkpointing(self, tmp_path):
        policy = ExecutionPolicy(checkpoint_dir=str(tmp_path))
        run_sharded(
            kind="unit", total=4, policy=policy, workers=1,
            make_task=None, serial_run=_serial_rows, fingerprint=None,
            use_pool=False,
        )
        assert list(tmp_path.iterdir()) == []
