"""Unit tests for spectral machinery (SLEM, Theorem 2)."""

import numpy as np
import pytest

from repro.errors import NotConnectedError
from repro.graph import Graph
from repro.core import (
    cheeger_bounds,
    conductance_lower_bound,
    normalized_adjacency,
    slem,
    spectral_gap,
    transition_spectrum_extremes,
)


class TestNormalizedAdjacency:
    def test_symmetric(self, petersen):
        mat = normalized_adjacency(petersen).toarray()
        assert np.allclose(mat, mat.T)

    def test_same_spectrum_as_transition(self, two_triangles_bridged):
        from repro.core import TransitionOperator

        n_eigs = np.sort(np.linalg.eigvalsh(normalized_adjacency(two_triangles_bridged).toarray()))
        op = TransitionOperator(two_triangles_bridged)
        p_eigs = np.sort(np.real(np.linalg.eigvals(op.matrix().toarray())))
        assert np.allclose(n_eigs, p_eigs, atol=1e-9)

    def test_isolated_node_raises(self):
        g = Graph.from_edges([(0, 1)], num_nodes=3)
        with pytest.raises(NotConnectedError):
            normalized_adjacency(g)


class TestKnownSpectra:
    def test_complete_graph(self, complete5):
        # K_n: lambda_2 = ... = lambda_n = -1/(n-1).
        summary = transition_spectrum_extremes(complete5, method="dense")
        assert summary.lambda2 == pytest.approx(-0.25, abs=1e-9)
        assert summary.lambda_min == pytest.approx(-0.25, abs=1e-9)
        assert summary.slem == pytest.approx(0.25, abs=1e-9)

    def test_petersen(self, petersen):
        # Walk spectrum {1, 1/3 x5, -2/3 x4} -> slem = 2/3.
        summary = transition_spectrum_extremes(petersen, method="dense")
        assert summary.lambda2 == pytest.approx(1 / 3, abs=1e-9)
        assert summary.lambda_min == pytest.approx(-2 / 3, abs=1e-9)
        assert summary.slem == pytest.approx(2 / 3, abs=1e-9)

    def test_cycle(self, cycle5):
        # C_n: eigenvalues cos(2 pi k / n); slem = max(|cos(2pi/5)|, |cos(4pi/5)|).
        summary = transition_spectrum_extremes(cycle5, method="dense")
        assert summary.slem == pytest.approx(abs(np.cos(4 * np.pi / 5)), abs=1e-9)

    def test_bipartite_slem_is_one(self, cycle6):
        summary = transition_spectrum_extremes(cycle6, method="dense")
        assert summary.lambda_min == pytest.approx(-1.0, abs=1e-9)
        assert summary.slem == pytest.approx(1.0, abs=1e-9)
        assert summary.gap == pytest.approx(0.0, abs=1e-9)


class TestBackendAgreement:
    @pytest.mark.parametrize("method", ["sparse", "dense", "power"])
    def test_er_graph(self, er_medium, method):
        reference = transition_spectrum_extremes(er_medium, method="dense")
        value = transition_spectrum_extremes(er_medium, method=method)
        assert value.slem == pytest.approx(reference.slem, abs=1e-6)
        assert value.method == method

    @pytest.mark.parametrize("method", ["sparse", "power"])
    def test_bridge_graph(self, bridge_graph, method):
        reference = transition_spectrum_extremes(bridge_graph, method="dense")
        value = transition_spectrum_extremes(bridge_graph, method=method)
        assert value.slem == pytest.approx(reference.slem, abs=1e-6)

    def test_dense_cap(self):
        from repro.generators import erdos_renyi_gnm
        from repro.graph import largest_connected_component

        g, _ = largest_connected_component(erdos_renyi_gnm(4100, 30000, seed=1))
        with pytest.raises(ValueError, match="capped"):
            transition_spectrum_extremes(g, method="dense")

    def test_unknown_method(self, petersen):
        with pytest.raises(ValueError, match="unknown method"):
            transition_spectrum_extremes(petersen, method="magic")


class TestBehaviour:
    def test_bottleneck_raises_slem(self):
        from repro.generators import two_community_bridge

        slems = []
        for bridges in (1, 8, 40):
            g, _ = two_community_bridge(100, 6, bridges, seed=5)
            slems.append(slem(g))
        assert slems[0] > slems[1] > slems[2]

    def test_disconnected_raises(self, triangle_plus_isolated):
        with pytest.raises(NotConnectedError):
            slem(triangle_plus_isolated)

    def test_check_connected_can_be_skipped(self, petersen):
        assert slem(petersen, check_connected=False) == pytest.approx(2 / 3, abs=1e-6)

    def test_tiny_graph_rejected(self):
        with pytest.raises(ValueError):
            transition_spectrum_extremes(Graph.empty(1))

    def test_gap_complements_slem(self, er_medium):
        assert spectral_gap(er_medium) == pytest.approx(1 - slem(er_medium), abs=1e-9)

    def test_relabel_invariance(self, bridge_graph, rng):
        from repro.graph import relabel_random

        relabelled, _perm = relabel_random(bridge_graph, rng)
        assert slem(relabelled) == pytest.approx(slem(bridge_graph), abs=1e-8)


class TestConductanceBounds:
    def test_conductance_lower_bound(self):
        assert conductance_lower_bound(0.9) == pytest.approx(0.05)
        with pytest.raises(ValueError):
            conductance_lower_bound(1.5)

    def test_cheeger_ordering(self):
        lo, hi = cheeger_bounds(0.95)
        assert 0 < lo < hi

    def test_cheeger_validates(self):
        with pytest.raises(ValueError):
            cheeger_bounds(1.5)

    def test_cheeger_contains_true_conductance(self, two_triangles_bridged):
        from repro.graph import conductance_of_set
        from repro.community import spectral_sweep_cut

        summary = transition_spectrum_extremes(two_triangles_bridged, method="dense")
        lo, hi = cheeger_bounds(summary.lambda2)
        cut = spectral_sweep_cut(two_triangles_bridged)
        assert lo - 1e-9 <= cut.conductance <= hi + 1e-9
