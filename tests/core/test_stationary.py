"""Unit tests for stationary distributions (Theorem 1)."""

import numpy as np
import pytest

from repro.errors import NotConnectedError
from repro.graph import Graph
from repro.core import (
    edge_stationary_distribution,
    is_stationary,
    stationary_distribution,
    stationary_residual,
    uniform_distribution,
)


class TestStationaryDistribution:
    def test_degree_proportional(self, star6):
        pi = stationary_distribution(star6)
        assert pi[0] == pytest.approx(0.5)  # hub: 5 / (2*5)
        assert pi[1] == pytest.approx(0.1)

    def test_sums_to_one(self, petersen):
        assert stationary_distribution(petersen).sum() == pytest.approx(1.0)

    def test_regular_graph_is_uniform(self, cycle5):
        pi = stationary_distribution(cycle5)
        assert np.allclose(pi, uniform_distribution(5))

    def test_invariance(self, petersen, two_triangles_bridged):
        for g in (petersen, two_triangles_bridged):
            pi = stationary_distribution(g)
            assert is_stationary(g, pi)
            assert stationary_residual(g, pi) < 1e-12

    def test_uniform_not_stationary_on_irregular(self, star6):
        assert not is_stationary(star6, uniform_distribution(6))
        assert stationary_residual(star6, uniform_distribution(6)) > 0.1

    def test_no_edges_raises(self):
        with pytest.raises(NotConnectedError):
            stationary_distribution(Graph.empty(3))

    def test_isolated_node_raises(self):
        g = Graph.from_edges([(0, 1)], num_nodes=3)
        with pytest.raises(NotConnectedError):
            stationary_distribution(g)

    def test_residual_rejects_wrong_length(self, cycle5):
        with pytest.raises(ValueError):
            stationary_residual(cycle5, uniform_distribution(4))


class TestHelpers:
    def test_uniform_distribution(self):
        assert uniform_distribution(4).tolist() == [0.25] * 4
        with pytest.raises(ValueError):
            uniform_distribution(0)

    def test_edge_stationary(self, cycle5):
        dist = edge_stationary_distribution(cycle5)
        assert dist.size == 10
        assert dist.sum() == pytest.approx(1.0)

    def test_edge_stationary_no_edges(self):
        with pytest.raises(NotConnectedError):
            edge_stationary_distribution(Graph.empty(2))
