"""Unit tests for trust-aware walks."""

import numpy as np
import pytest

from repro.core import (
    TransitionOperator,
    WeightedTransitionOperator,
    jaccard_arc_weights,
    originator_biased_curve,
    stationary_distribution,
)
from repro.graph import Graph


class TestJaccardWeights:
    def test_alignment_and_positivity(self, petersen):
        w = jaccard_arc_weights(petersen)
        assert w.shape == (2 * petersen.num_edges,)
        assert np.all(w > 0)

    def test_symmetry(self, two_triangles_bridged):
        from repro.sybil.routes import reverse_slots

        w = jaccard_arc_weights(two_triangles_bridged)
        rev = reverse_slots(two_triangles_bridged)
        assert np.allclose(w, w[rev])

    def test_triangle_edges_heavier_than_bridge(self, two_triangles_bridged):
        g = two_triangles_bridged
        w = jaccard_arc_weights(g, smoothing=0.1)
        # Slot of arc (0 -> 1): inside a triangle, 1 shared neighbour.
        slot_tri = int(g.indptr[0] + np.searchsorted(g.neighbors(0), 1))
        # Slot of the bridge arc (2 -> 3): no shared neighbours.
        slot_bridge = int(g.indptr[2] + np.searchsorted(g.neighbors(2), 3))
        assert w[slot_tri] > w[slot_bridge]
        assert w[slot_bridge] == pytest.approx(0.1)

    def test_smoothing_validation(self, petersen):
        with pytest.raises(ValueError):
            jaccard_arc_weights(petersen, smoothing=0.0)


class TestWeightedOperator:
    def test_uniform_weights_match_plain_walk(self, petersen):
        weights = np.ones(2 * petersen.num_edges)
        weighted = WeightedTransitionOperator(petersen, weights)
        plain = TransitionOperator(petersen)
        x = plain.point_mass(0)
        for _ in range(4):
            assert np.allclose(weighted.step(x), plain.step(x))
            x = plain.step(x)

    def test_stationary_is_strength_proportional(self, two_triangles_bridged):
        w = jaccard_arc_weights(two_triangles_bridged)
        op = WeightedTransitionOperator(two_triangles_bridged, w)
        pi = op.stationary()
        assert pi.sum() == pytest.approx(1.0)
        assert np.allclose(op.step(pi), pi, atol=1e-12)

    def test_rejects_asymmetric_weights(self, petersen):
        w = np.ones(2 * petersen.num_edges)
        w[0] = 5.0  # breaks symmetry for one arc
        with pytest.raises(ValueError, match="symmetric"):
            WeightedTransitionOperator(petersen, w)

    def test_rejects_nonpositive(self, petersen):
        w = np.ones(2 * petersen.num_edges)
        w[3] = 0.0
        with pytest.raises(ValueError, match="positive"):
            WeightedTransitionOperator(petersen, w)

    def test_rejects_misaligned(self, petersen):
        with pytest.raises(ValueError, match="align"):
            WeightedTransitionOperator(petersen, np.ones(5))

    def test_variation_curve_converges(self, er_medium):
        w = jaccard_arc_weights(er_medium)
        op = WeightedTransitionOperator(er_medium, w)
        curve = op.variation_curve(0, 60)
        assert curve[-1] < curve[0]
        assert curve[-1] < 0.05

    def test_similarity_weighting_slows_community_graph(self):
        """Down-weighting weak ties strengthens the bottleneck.

        Needs communities with triangles (Jaccard is zero on the
        triangle-free random-regular bridge fixture): dense planted
        blocks give intra-block similarity ~p while the sparse cut has
        nearly none, so the weighting widens the mixing gap.
        """
        from repro.generators import planted_partition
        from repro.graph import largest_connected_component
        from repro.core import total_variation_distance

        raw, _ = planted_partition(2, 60, 0.4, 0.004, seed=3)
        g, _ = largest_connected_component(raw)
        plain = TransitionOperator(g)
        pi = plain.stationary()
        x = plain.point_mass(0)
        for _ in range(40):
            x = plain.step(x)
        plain_d = total_variation_distance(x, pi, validate=False)

        weighted = WeightedTransitionOperator(g, jaccard_arc_weights(g))
        wd = weighted.variation_curve(0, 40)[-1]
        assert wd > plain_d


class TestOriginatorBias:
    def test_beta_zero_matches_plain(self, petersen):
        plain_op = TransitionOperator(petersen)
        pi = stationary_distribution(petersen)
        from repro.core import total_variation_distance

        x = plain_op.point_mass(0)
        expected = [total_variation_distance(x, pi, validate=False)]
        for _ in range(10):
            x = plain_op.step(x)
            expected.append(total_variation_distance(x, pi, validate=False))
        curve = originator_biased_curve(petersen, 0, 0.0, 10)
        assert np.allclose(curve, expected)

    def test_bias_floors_the_curve(self, er_medium):
        unbiased = originator_biased_curve(er_medium, 0, 0.0, 80)
        biased = originator_biased_curve(er_medium, 0, 0.3, 80)
        assert unbiased[-1] < 0.01
        assert biased[-1] > 0.2  # never mixes

    def test_monotone_in_beta(self, er_medium):
        finals = [
            originator_biased_curve(er_medium, 0, beta, 60)[-1]
            for beta in (0.0, 0.1, 0.3)
        ]
        assert finals[0] < finals[1] < finals[2]

    def test_validation(self, petersen):
        with pytest.raises(ValueError):
            originator_biased_curve(petersen, 0, 1.0, 5)
        with pytest.raises(ValueError):
            originator_biased_curve(petersen, 0, 0.5, -1)
        with pytest.raises(IndexError):
            originator_biased_curve(petersen, 99, 0.5, 5)


class TestWeightedSlem:
    def test_uniform_weights_match_plain_slem(self, er_medium):
        from repro.core import slem, weighted_slem

        uniform = np.ones(2 * er_medium.num_edges)
        assert weighted_slem(er_medium, uniform) == pytest.approx(
            slem(er_medium), abs=1e-8
        )

    def test_small_graph_dense_path(self, petersen):
        from repro.core import slem, weighted_slem

        uniform = np.ones(2 * petersen.num_edges)
        assert weighted_slem(petersen, uniform) == pytest.approx(2 / 3, abs=1e-9)

    def test_similarity_weighting_raises_slem_on_communities(self):
        from repro.core import slem, weighted_slem
        from repro.generators import planted_partition
        from repro.graph import largest_connected_component

        raw, _ = planted_partition(2, 80, 0.35, 0.004, seed=3)
        g, _ = largest_connected_component(raw)
        assert weighted_slem(g, jaccard_arc_weights(g)) > slem(g)

    def test_bounds_within_unit_interval(self, bridge_graph):
        from repro.core import weighted_slem

        mu = weighted_slem(bridge_graph, jaccard_arc_weights(bridge_graph))
        assert 0.0 <= mu <= 1.0

    def test_validates_weights(self, petersen):
        from repro.core import weighted_slem

        with pytest.raises(ValueError):
            weighted_slem(petersen, np.ones(3))
