"""Unit tests for TransitionOperator and walk simulation."""

import numpy as np
import pytest

from repro.errors import NotConnectedError, NotErgodicError
from repro.graph import Graph
from repro.core import (
    TransitionOperator,
    is_bipartite,
    simulate_walk,
    simulate_walk_endpoints,
    stationary_distribution,
    total_variation_distance,
)


class TestBipartite:
    def test_even_cycle(self, cycle6):
        assert is_bipartite(cycle6)

    def test_odd_cycle(self, cycle5):
        assert not is_bipartite(cycle5)

    def test_star_and_path(self, star6, path4):
        assert is_bipartite(star6)
        assert is_bipartite(path4)

    def test_petersen(self, petersen):
        assert not is_bipartite(petersen)

    def test_per_component(self):
        # A triangle plus a disjoint edge: not bipartite overall.
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (3, 4)])
        assert not is_bipartite(g)


class TestTransitionOperator:
    def test_rows_are_stochastic(self, petersen):
        op = TransitionOperator(petersen)
        rows = np.asarray(op.matrix().sum(axis=1)).ravel()
        assert np.allclose(rows, 1.0)

    def test_transition_probability(self, star6):
        op = TransitionOperator(star6, laziness=0.0, check_aperiodic=False)
        assert op.transition_probability(0, 1) == pytest.approx(0.2)
        assert op.transition_probability(1, 0) == pytest.approx(1.0)
        assert op.transition_probability(1, 2) == 0.0

    def test_lazy_transition_probability(self, cycle5):
        op = TransitionOperator(cycle5, laziness=0.5)
        assert op.transition_probability(0, 0) == pytest.approx(0.5)
        assert op.transition_probability(0, 1) == pytest.approx(0.25)

    def test_rejects_disconnected(self, triangle_plus_isolated):
        with pytest.raises(NotConnectedError):
            TransitionOperator(triangle_plus_isolated)

    def test_rejects_bipartite_without_laziness(self, cycle6):
        with pytest.raises(NotErgodicError):
            TransitionOperator(cycle6)

    def test_bipartite_ok_with_laziness(self, cycle6):
        op = TransitionOperator(cycle6, laziness=0.25)
        assert op.laziness == 0.25

    def test_rejects_empty(self):
        with pytest.raises(NotConnectedError):
            TransitionOperator(Graph.empty(0))

    def test_invalid_laziness(self, cycle5):
        with pytest.raises(ValueError):
            TransitionOperator(cycle5, laziness=1.0)

    def test_point_mass(self, cycle5):
        op = TransitionOperator(cycle5)
        x = op.point_mass(2)
        assert x[2] == 1.0 and x.sum() == 1.0

    def test_step_spreads_mass(self, cycle5):
        op = TransitionOperator(cycle5)
        x = op.step(op.point_mass(0))
        assert x[1] == pytest.approx(0.5)
        assert x[4] == pytest.approx(0.5)

    def test_evolve_matches_repeated_step(self, petersen):
        op = TransitionOperator(petersen)
        x = op.point_mass(0)
        manual = x
        for _ in range(5):
            manual = op.step(manual)
        assert np.allclose(op.evolve(x, 5), manual)

    def test_evolve_preserves_mass(self, petersen):
        op = TransitionOperator(petersen)
        out = op.evolve(op.point_mass(3), 17)
        assert out.sum() == pytest.approx(1.0)
        assert np.all(out >= 0)

    def test_trajectory_shape_and_consistency(self, petersen):
        op = TransitionOperator(petersen)
        traj = op.trajectory(op.point_mass(0), 4)
        assert traj.shape == (5, 10)
        assert np.allclose(traj[4], op.evolve(op.point_mass(0), 4))

    def test_stationary_is_fixed_point(self, two_triangles_bridged):
        op = TransitionOperator(two_triangles_bridged)
        pi = op.stationary()
        assert np.allclose(op.step(pi), pi)

    def test_lazy_walk_same_stationary(self, two_triangles_bridged):
        lazy = TransitionOperator(two_triangles_bridged, laziness=0.3)
        pi = lazy.stationary()
        assert np.allclose(lazy.step(pi), pi)

    def test_convergence_to_stationary(self, petersen):
        op = TransitionOperator(petersen)
        pi = op.stationary()
        x = op.evolve(op.point_mass(0), 60)
        assert total_variation_distance(x, pi, validate=False) < 1e-9

    def test_negative_steps_rejected(self, cycle5):
        op = TransitionOperator(cycle5)
        with pytest.raises(ValueError):
            op.evolve(op.point_mass(0), -1)


class TestSimulateWalk:
    def test_path_is_valid(self, petersen):
        path = simulate_walk(petersen, 0, 50, seed=1)
        assert path.size == 51
        assert path[0] == 0
        for a, b in zip(path[:-1], path[1:]):
            assert petersen.has_edge(int(a), int(b))

    def test_lazy_walk_can_stay(self, cycle5):
        path = simulate_walk(cycle5, 0, 100, seed=2, laziness=0.9)
        stays = (path[:-1] == path[1:]).sum()
        assert stays > 50

    def test_zero_length(self, cycle5):
        assert simulate_walk(cycle5, 3, 0, seed=3).tolist() == [3]

    def test_isolated_start_raises(self, triangle_plus_isolated):
        with pytest.raises(NotConnectedError):
            simulate_walk(triangle_plus_isolated, 3, 5, seed=4)

    def test_deterministic_given_seed(self, petersen):
        a = simulate_walk(petersen, 0, 30, seed=42)
        b = simulate_walk(petersen, 0, 30, seed=42)
        assert np.array_equal(a, b)

    def test_endpoints_match_evolved_distribution(self, petersen):
        """Monte Carlo endpoints must converge to the exact distribution."""
        op = TransitionOperator(petersen)
        exact = op.evolve(op.point_mass(0), 4)
        ends = simulate_walk_endpoints(petersen, 0, 4, 4000, seed=5)
        empirical = np.bincount(ends, minlength=10) / ends.size
        assert total_variation_distance(empirical, exact, validate=False) < 0.05
