"""Unit tests for the dataset cache hierarchy."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datasets import clear_memory_cache, default_cache_dir, load_cached


@pytest.fixture(autouse=True)
def _fresh_memory():
    clear_memory_cache()
    yield
    clear_memory_cache()


class TestMemoryCache:
    def test_same_object_returned(self, tmp_path):
        a = load_cached("physics1", cache_dir=tmp_path)
        b = load_cached("physics1", cache_dir=tmp_path)
        assert a is b

    def test_distinct_seeds_distinct_entries(self, tmp_path):
        a = load_cached("physics1", seed=1, cache_dir=tmp_path)
        b = load_cached("physics1", seed=2, cache_dir=tmp_path)
        assert a is not b
        assert a != b

    def test_clear_forgets(self, tmp_path):
        a = load_cached("physics1", cache_dir=tmp_path)
        clear_memory_cache()
        b = load_cached("physics1", cache_dir=tmp_path)
        assert a is not b
        assert a == b  # regenerated deterministically


class TestDiskCache:
    def test_writes_npz(self, tmp_path):
        load_cached("physics1", cache_dir=tmp_path)
        assert (tmp_path / "physics1-default.npz").exists()

    def test_disk_hit_after_memory_clear(self, tmp_path):
        a = load_cached("physics1", cache_dir=tmp_path)
        clear_memory_cache()
        b = load_cached("physics1", cache_dir=tmp_path)
        assert a == b

    def test_no_disk_mode(self, tmp_path):
        load_cached("physics1", use_disk=False, cache_dir=tmp_path)
        assert not list(tmp_path.iterdir())

    def test_seeded_file_name(self, tmp_path):
        load_cached("physics1", seed=42, cache_dir=tmp_path)
        assert (tmp_path / "physics1-42.npz").exists()

    def test_unknown_name_raises_before_io(self, tmp_path):
        with pytest.raises(DatasetError):
            load_cached("unknown_graph", cache_dir=tmp_path)
        assert not list(tmp_path.iterdir())


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "repro-mixing"
