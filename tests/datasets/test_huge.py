"""The paper-scale ``huge`` tier: chunked generation, cache routing, SNAP.

Everything here runs at toy scale — the generator and ingest paths are
pure functions of (seed, chunk), so a 500-node build exercises exactly
the code paths a 1M-node build does, minus the minutes.
"""

import gzip
import hashlib

import numpy as np
import pytest

from repro.datasets import (
    REGISTRY,
    clear_memory_cache,
    dataset_names,
    generate_huge,
    get_spec,
    huge_dataset_names,
    load_cached,
)
from repro.datasets.snap import SNAP_SOURCES, fetch_dataset, ingest_edge_list
from repro.datasets.synthetic import generate_raw
from repro.errors import DatasetError
from repro.generators.chunked import (
    build_csr_from_edge_chunks,
    chunked_community_csr,
    extract_nodes_to_csr,
)
from repro.graph import Graph, MemmapGraph, largest_connected_component, open_csr, save_csr


def assert_valid_csr(graph):
    """Structural invariants every Graph promises."""
    indptr = np.asarray(graph.indptr)
    indices = np.asarray(graph.indices)
    n = graph.num_nodes
    assert indptr[0] == 0 and indptr[-1] == len(indices)
    for u in range(n):
        row = indices[indptr[u]:indptr[u + 1]]
        assert np.all(np.diff(row) > 0), f"row {u} not strictly sorted"
        assert u not in row, f"self loop at {u}"
    # Undirected: every arc has its mirror.
    fwd = {(u, v) for u in range(n) for v in indices[indptr[u]:indptr[u + 1]]}
    assert {(v, u) for u, v in fwd} == fwd


class TestChunkedBuilder:
    def test_matches_in_memory_reference(self, tmp_path):
        """The 4-pass external build equals Graph.from_edges exactly."""
        rng = np.random.default_rng(3)
        n = 120
        src = rng.integers(0, n, 500)
        dst = rng.integers(0, n, 500)
        chunks = [(src[i:i + 64], dst[i:i + 64]) for i in range(0, 500, 64)]
        mapped = build_csr_from_edge_chunks(
            tmp_path / "g.csr", n, lambda: chunks, stripe_entries=128
        )
        pairs = {(min(u, v), max(u, v)) for u, v in zip(src, dst) if u != v}
        reference = Graph.from_edges(sorted(pairs), num_nodes=n)
        assert np.array_equal(np.asarray(mapped.indptr), reference.indptr)
        assert np.array_equal(np.asarray(mapped.indices), reference.indices)

    def test_rejects_out_of_range_ids(self, tmp_path):
        chunks = [(np.array([0, 9]), np.array([1, 3]))]
        with pytest.raises(Exception):
            build_csr_from_edge_chunks(tmp_path / "g.csr", 5, lambda: chunks)

    def test_community_csr_connected_valid_deterministic(self, tmp_path):
        a = chunked_community_csr(
            tmp_path / "a.csr", 500, num_communities=5, mu_frac=0.05,
            mean_extra_degree=4.0, seed=9, chunk_nodes=128,
        )
        b = chunked_community_csr(
            tmp_path / "b.csr", 500, num_communities=5, mu_frac=0.05,
            mean_extra_degree=4.0, seed=9, chunk_nodes=128,
        )
        assert_valid_csr(a)
        assert np.array_equal(np.asarray(a.indices), np.asarray(b.indices))
        assert np.array_equal(np.asarray(a.indptr), np.asarray(b.indptr))
        # Ring backbone guarantees a single component.
        lcc, _ = largest_connected_component(a.materialize())
        assert lcc.num_nodes == 500

    def test_extract_nodes(self, tmp_path, petersen):
        save_csr(petersen, tmp_path / "p.csr")
        mapped = open_csr(tmp_path / "p.csr")
        mask = np.ones(petersen.num_nodes, dtype=bool)
        sub = extract_nodes_to_csr(mapped, mask, tmp_path / "sub.csr")
        assert np.array_equal(np.asarray(sub.indices), petersen.indices)


class TestTierRouting:
    def test_registry_tiers(self):
        assert "huge_livejournal" in huge_dataset_names()
        assert "huge_livejournal" not in dataset_names()
        spec = get_spec("huge_livejournal")
        assert spec.recipe == "chunked_community" and spec.nodes == 1_000_000

    def test_generate_raw_refuses_chunked_recipe(self):
        with pytest.raises(DatasetError):
            generate_raw(get_spec("huge_livejournal"))

    def test_load_cached_requires_disk(self, tmp_path):
        with pytest.raises(DatasetError, match="use_disk"):
            load_cached("huge_livejournal", use_disk=False, cache_dir=tmp_path)

    def test_generate_huge_validates_recipe(self, tmp_path):
        with pytest.raises(DatasetError):
            generate_huge(get_spec("wiki_vote"), tmp_path / "x.csr")

    def test_load_cached_roundtrip(self, tmp_path, monkeypatch):
        """A shrunk huge spec goes generate → memory hit → disk hit."""
        import dataclasses

        import repro.datasets.cache as cache_mod

        small = dataclasses.replace(
            get_spec("huge_livejournal"),
            name="huge_smoke",
            nodes=400,
            edges=1200,
            params={"mu_frac": 0.1, "num_communities": 4, "mean_extra_degree": 3.0},
        )
        monkeypatch.setitem(REGISTRY, "huge_smoke", small)
        clear_memory_cache()
        try:
            first = load_cached("huge_smoke", cache_dir=tmp_path)
            assert isinstance(first, MemmapGraph)
            assert (tmp_path / "huge_smoke-default.csr").exists()
            again = load_cached("huge_smoke", cache_dir=tmp_path)
            assert again is first  # memory hit
            clear_memory_cache()
            from_disk = load_cached("huge_smoke", cache_dir=tmp_path)
            assert np.array_equal(
                np.asarray(from_disk.indices), np.asarray(first.indices)
            )
        finally:
            clear_memory_cache()
        assert cache_mod is not None  # silence linters about the import


class TestSnapIngest:
    def _edge_file(self, tmp_path, lines):
        path = tmp_path / "edges.txt"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_ingest_relabels_and_keeps_lcc(self, tmp_path):
        # Two components: a 4-cycle on odd ids and an isolated edge.
        text = self._edge_file(
            tmp_path,
            [
                "# comment line",
                "11 13",
                "13 17",
                "17 19",
                "19 11",
                "100 200",
            ],
        )
        graph = ingest_edge_list(text, tmp_path / "g.csr")
        assert graph.num_nodes == 4
        assert graph.num_edges == 4
        assert_valid_csr(graph)

    def test_ingest_keep_all_components(self, tmp_path):
        text = self._edge_file(tmp_path, ["0 1", "2 3"])
        graph = ingest_edge_list(
            text, tmp_path / "g.csr", keep_largest_component=False
        )
        assert graph.num_nodes == 4 and graph.num_edges == 2

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="unknown"):
            fetch_dataset("not-a-dataset", tmp_path)

    def test_unpinned_download_refused(self, tmp_path):
        # Registry entries ship without digests (recorded after a first
        # verified download); fetching without an explicit pin must fail
        # *before* any network or parsing happens.
        assert SNAP_SOURCES["ca-grqc"].sha256 is None
        with pytest.raises(DatasetError, match="sha256"):
            fetch_dataset("ca-grqc", tmp_path)

    def test_checksum_mismatch_aborts(self, tmp_path):
        payload = gzip.compress(b"0 1\n1 2\n2 0\n")
        src = tmp_path / "payload.gz"
        src.write_bytes(payload)
        with pytest.raises(DatasetError, match="mismatch"):
            fetch_dataset(
                "ca-grqc",
                tmp_path / "out",
                url=src.as_uri(),
                sha256="0" * 64,
            )

    def test_offline_fetch_end_to_end(self, tmp_path):
        payload = gzip.compress(b"# header\n5 6\n6 7\n7 5\n9 5\n")
        src = tmp_path / "payload.gz"
        src.write_bytes(payload)
        digest = hashlib.sha256(payload).hexdigest()
        dest = fetch_dataset(
            "ca-grqc", tmp_path / "out", url=src.as_uri(), sha256=digest
        )
        graph = open_csr(dest)
        assert graph.num_nodes == 4 and graph.num_edges == 4
        assert_valid_csr(graph)
