"""Unit tests for the Table 1 dataset registry."""

import pytest

from repro.errors import DatasetError
from repro.datasets import (
    REGISTRY,
    dataset_names,
    figure7_dataset_names,
    get_spec,
    large_dataset_names,
    physics_dataset_names,
    small_dataset_names,
)


class TestRegistryContents:
    def test_fifteen_table1_rows(self):
        # Table 1 has 15 rows; the paper-scale "huge" tier rides in the
        # registry but never in the default roster.
        from repro.datasets import dataset_names, huge_dataset_names

        assert len(dataset_names()) == 15
        assert len(REGISTRY) == 15 + len(huge_dataset_names())
        assert not set(huge_dataset_names()) & set(dataset_names())

    def test_paper_sizes_match_table1(self):
        # Spot-check the sizes printed in the paper's Table 1.
        assert get_spec("wiki_vote").paper_nodes == 7_066
        assert get_spec("dblp").paper_nodes == 614_981
        assert get_spec("dblp").paper_edges == 1_155_086
        assert get_spec("youtube").paper_nodes == 1_134_890
        assert get_spec("facebook_a").paper_edges == 20_353_734
        assert get_spec("physics1").paper_nodes == 4_158

    def test_categories_are_known(self):
        for spec in REGISTRY.values():
            assert spec.category in ("acquaintance", "interaction", "osn")

    def test_scales_partition(self):
        small = set(small_dataset_names())
        large = set(large_dataset_names())
        assert small | large == set(dataset_names())
        assert not (small & large)

    def test_physics_names(self):
        assert physics_dataset_names() == ["physics1", "physics2", "physics3"]

    def test_figure7_names(self):
        assert figure7_dataset_names() == [
            "facebook_a",
            "facebook_b",
            "livejournal_a",
            "livejournal_b",
        ]

    def test_standins_are_downscaled(self):
        for spec in REGISTRY.values():
            assert spec.nodes <= spec.paper_nodes
            assert spec.edges <= spec.paper_edges


class TestSpecBehaviour:
    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            get_spec("friendster")

    def test_seed_is_deterministic_and_distinct(self):
        seeds = {spec.seed for spec in REGISTRY.values()}
        assert len(seeds) == len(REGISTRY)
        assert get_spec("dblp").seed == get_spec("dblp").seed

    def test_specs_are_frozen(self):
        spec = get_spec("enron")
        with pytest.raises(AttributeError):
            spec.nodes = 1
