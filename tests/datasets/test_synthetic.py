"""Unit tests for stand-in generation (recipe dispatch + LCC contract)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.datasets import get_spec, generate, generate_raw, load_dataset
from repro.datasets.registry import DatasetSpec
from repro.graph import is_connected


class TestGenerate:
    def test_lcc_contract(self):
        g = load_dataset("physics1")
        assert is_connected(g)
        assert g.degrees.min() >= 1

    def test_size_near_target(self):
        spec = get_spec("wiki_vote")
        g = generate(spec)
        assert g.num_nodes == pytest.approx(spec.nodes, rel=0.15)
        assert g.num_edges == pytest.approx(spec.edges, rel=0.35)

    def test_deterministic_default_seed(self):
        assert load_dataset("enron") == load_dataset("enron")

    def test_seed_override_changes_graph(self):
        assert load_dataset("enron", seed=1) != load_dataset("enron", seed=2)

    def test_raw_may_be_disconnected(self):
        spec = get_spec("physics1")
        raw = generate_raw(spec)
        lcc = generate(spec)
        assert lcc.num_nodes <= raw.num_nodes

    def test_unknown_recipe_raises(self):
        spec = DatasetSpec(
            name="bogus",
            table1_label="Bogus",
            category="osn",
            paper_nodes=10,
            paper_edges=10,
            nodes=10,
            edges=10,
            recipe="quantum_annealing",
            params={},
            scale="small",
        )
        with pytest.raises(DatasetError, match="unknown recipe"):
            generate_raw(spec)

    @pytest.mark.parametrize(
        "recipe,params,nodes,edges",
        [
            ("erdos_renyi", {}, 300, 900),
            ("powerlaw_configuration", {"gamma": 2.5}, 300, 900),
            ("holme_kim", {"m_per_node": 3, "triad_prob": 0.4}, 300, 900),
            ("barabasi_albert", {"m_per_node": 3}, 300, 900),
            ("watts_strogatz", {"k": 6, "p": 0.2}, 300, 900),
            ("affiliation", {"mu_frac": 0.1, "num_communities": 10}, 300, 700),
        ],
    )
    def test_all_recipes_dispatch(self, recipe, params, nodes, edges):
        spec = DatasetSpec(
            name=f"synthetic_{recipe}",
            table1_label="X",
            category="osn",
            paper_nodes=nodes,
            paper_edges=edges,
            nodes=nodes,
            edges=edges,
            recipe=recipe,
            params=params,
            scale="small",
        )
        g = generate(spec)
        assert g.num_nodes > 0
        assert is_connected(g)
