"""Temporal dataset tier: registry, determinism, connectivity, caching.

The structural guarantee under test is the BFS backbone: it never
churns, so *every* window of every temporal stand-in is connected —
without that, spectral and mixing measurement would be undefined
mid-stream and the warm solver's agreement contract unverifiable.
"""

from __future__ import annotations

import pytest

from repro.datasets import (
    TEMPORAL_REGISTRY,
    clear_temporal_cache,
    generate_temporal,
    get_temporal_spec,
    load_temporal_cached,
    temporal_dataset_names,
)
from repro.datasets.cache import _LOAD_LOG
from repro.errors import DatasetError
from repro.graph import TemporalGraph, is_connected


@pytest.fixture(autouse=True)
def _pristine_cache():
    clear_temporal_cache()
    _LOAD_LOG.clear()
    yield
    clear_temporal_cache()
    _LOAD_LOG.clear()


class TestRegistry:
    def test_expected_names(self):
        assert temporal_dataset_names() == [
            "temporal_enron",
            "temporal_mathoverflow",
            "temporal_superuser",
        ]

    def test_specs_are_well_formed(self):
        for name, spec in TEMPORAL_REGISTRY.items():
            assert spec.name == name
            assert spec.nodes > 0 and spec.edges > 0
            assert 0.0 < spec.base_fraction < 1.0
            assert spec.num_deltas > 0 and spec.time_step > 0
            assert spec.label and spec.description

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError, match="unknown temporal dataset"):
            get_temporal_spec("temporal_orkut")

    def test_seed_is_stable_and_distinct(self):
        seeds = {spec.seed for spec in TEMPORAL_REGISTRY.values()}
        assert len(seeds) == len(TEMPORAL_REGISTRY)
        assert get_temporal_spec("temporal_enron").seed == TEMPORAL_REGISTRY[
            "temporal_enron"
        ].seed


class TestGeneration:
    def test_deterministic_across_calls(self):
        spec = get_temporal_spec("temporal_mathoverflow")
        a = generate_temporal(spec)
        b = generate_temporal(spec)
        assert isinstance(a, TemporalGraph)
        assert a.version == b.version  # content-derived: same stream
        assert a.times() == b.times()

    def test_every_window_connected(self):
        # The backbone guarantee, checked on the smallest stand-in at a
        # sampled set of boundaries (every window is too slow for tier 1).
        temporal = load_temporal_cached("temporal_mathoverflow")
        times = temporal.times()
        sampled = [times[0], times[len(times) // 2], times[-1]]
        for t in sampled:
            assert is_connected(temporal.at(t)), f"window t={t} disconnected"

    def test_stream_shape(self):
        spec = get_temporal_spec("temporal_mathoverflow")
        temporal = generate_temporal(spec)
        times = temporal.times()
        assert len(times) == spec.num_deltas + 1  # base + every batch
        assert times[0] == temporal.base_time
        steps = {b - a for a, b in zip(times[1:], times[2:])}
        assert steps == {spec.time_step}
        # Net growth: churn retires fewer edges than arrive per batch.
        assert temporal.snapshot().num_edges > temporal.at(times[0]).num_edges


class TestCaching:
    def test_memoised_and_logged(self):
        a = load_temporal_cached("temporal_mathoverflow")
        b = load_temporal_cached("temporal_mathoverflow")
        assert a is b
        assert "temporal_mathoverflow" in _LOAD_LOG

    def test_clear_cache_regenerates(self):
        a = load_temporal_cached("temporal_mathoverflow")
        clear_temporal_cache()
        b = load_temporal_cached("temporal_mathoverflow")
        assert a is not b
        assert a.version == b.version  # regeneration is deterministic

    def test_unknown_name_not_cached(self):
        with pytest.raises(DatasetError):
            load_temporal_cached("nope")
        assert "nope" not in _LOAD_LOG
