"""The adversarial sweep engine: grid semantics, parallel bit-identity,
checkpoint/resume, and the result accessors.

The heavy lifting (strategy generators, defense protocols) is covered by
their own suites; here the contract under test is the *sweep*:

* every (strategy, size, budget, defense) cell reduces to the right
  admission counts, with the g=0 column equal to the no-attacker
  baseline;
* worker count and execution mode never change a single bit of the
  result grid;
* an interrupted checkpointed sweep resumes from disk, recomputing only
  the missing cells;
* the frontier / security-bound accessors agree with the raw grid.
"""

import numpy as np
import pytest

from repro.core import ExecutionPolicy
from repro.errors import ConfigurationError
from repro.experiments import (
    ADVERSARIAL_DEFENSES,
    AdversarialKnobs,
    adversarial_sweep,
    default_adversarial_knobs,
    run_defense_admission,
)
from repro.generators import erdos_renyi_gnm
from repro.graph import largest_connected_component
from repro.obs import OBS
from repro.sybil import available_attack_strategies, build_attack_scenario

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")

#: Cheap knobs so six defenses on a toy graph stay sub-second per cell.
TINY_KNOBS = AdversarialKnobs(
    route_length=4,
    sybillimit_instances=4,
    infer_samples=8,
    infer_burn_in=4,
    infer_steps=1,
    sumup_c_max=5,
    whanau_walk_length=4,
)


@pytest.fixture(scope="module")
def honest():
    graph, _ = largest_connected_component(erdos_renyi_gnm(40, 140, seed=7))
    return graph


def tiny_sweep(honest, **overrides):
    kwargs = dict(
        strategies=["random", "targeted"],
        sybil_sizes=[10],
        attack_budgets=[0, 3],
        defenses=ADVERSARIAL_DEFENSES,
        seed=5,
        knobs=TINY_KNOBS,
        max_suspects=12,
    )
    kwargs.update(overrides)
    return adversarial_sweep(honest, **kwargs)


# ----------------------------------------------------------------------
# Grid semantics
# ----------------------------------------------------------------------
class TestGridSemantics:
    def test_counts_shape_and_totals(self, honest):
        result = tiny_sweep(honest)
        assert result.counts.shape == (2, 1, 2, len(ADVERSARIAL_DEFENSES), 4)
        for strategy in result.strategies:
            for defense in result.defenses:
                baseline = result.metrics(strategy, 10, 0, defense)
                attacked = result.metrics(strategy, 10, 3, defense)
                # g=0: no sybil region exists, only honest suspects.
                assert baseline.sybil_total == 0
                assert baseline.honest_total == 12
                assert attacked.sybil_total == 10
                assert attacked.honest_total == 12
                assert 0 <= attacked.sybil_accepted <= 10
                assert 0 <= attacked.honest_accepted <= 12

    def test_zero_budget_column_is_strategy_independent(self, honest):
        """g=0 is the shared no-attacker baseline: identical counts no
        matter which strategy labels the row."""
        result = tiny_sweep(honest)
        assert np.array_equal(
            result.counts[0, :, 0, :, :], result.counts[1, :, 0, :, :]
        )

    def test_every_registered_strategy_sweepable(self, honest):
        result = tiny_sweep(
            honest,
            strategies=list(available_attack_strategies()),
            defenses=["sybilguard", "sybilrank"],
            attack_budgets=[0, 2],
        )
        assert result.strategies == available_attack_strategies()
        assert np.all(np.isfinite(result.counts))

    def test_accepts_strategy_objects(self, honest):
        from repro.sybil import AttackStrategy

        custom = AttackStrategy("inline-star", region="tree", branching=50)
        result = tiny_sweep(
            honest, strategies=[custom], defenses=["sybilrank"]
        )
        assert result.strategies == ("inline-star",)

    def test_frontier_matches_grid(self, honest):
        result = tiny_sweep(honest)
        budgets, admit, reject = result.frontier("sybilrank", "random", 10)
        assert budgets.tolist() == [0, 3]
        m = result.metrics("random", 10, 3, "sybilrank")
        assert admit[1] == pytest.approx(m.sybil_acceptance_rate)
        assert reject[1] == pytest.approx(m.honest_rejection_rate)
        # No sybils exist at g=0: the admit rate is NaN, not zero.
        assert np.isnan(admit[0])

    def test_bound_comparison_covers_positive_budget_cells(self, honest):
        result = tiny_sweep(honest)
        rows = result.bound_comparison()
        assert len(rows) == 2 * 1 * 1 * len(ADVERSARIAL_DEFENSES)
        for row in rows:
            assert row["budget"] == 3
            expected = row["sybil_accepted"] <= row["bound"]
            assert row["within_bound"] == expected


# ----------------------------------------------------------------------
# Determinism, parallel bit-identity, checkpoint/resume
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_fixed_seed_reproducible(self, honest):
        a = tiny_sweep(honest)
        b = tiny_sweep(honest)
        assert np.array_equal(a.counts, b.counts)

    def test_worker_count_never_changes_the_grid(self, honest):
        serial = tiny_sweep(honest)
        threaded = tiny_sweep(
            honest, policy=ExecutionPolicy(workers=2, execution="threads")
        )
        four = tiny_sweep(
            honest, policy=ExecutionPolicy(workers=4, execution="threads")
        )
        assert np.array_equal(serial.counts, threaded.counts)
        assert np.array_equal(serial.counts, four.counts)

    def test_checkpoint_resume_recomputes_only_missing_cells(self, honest, tmp_path):
        ckpt = tmp_path / "ckpt"
        full = tiny_sweep(
            honest, policy=ExecutionPolicy(checkpoint_dir=str(ckpt))
        )
        # Per-cell oversharding: one sweep shard per grid cell.  (Inner
        # defense runs checkpoint their own route sweeps into the same
        # directory under other kind prefixes; only the sweep's shards
        # are the resume unit under test.)
        shards = sorted(ckpt.glob("adversarial-*/shard-*.npz"))
        assert len(shards) == full.counts[..., 0].size

        # Simulate a mid-sweep kill: drop a third of the finished cells.
        dropped = shards[::3]
        for shard in dropped:
            shard.unlink()

        was_enabled = OBS.enabled
        OBS.reset()
        OBS.enable()
        try:
            resumed = tiny_sweep(
                honest, policy=ExecutionPolicy(checkpoint_dir=str(ckpt))
            )
            counters = OBS.snapshot()["counters"]
        finally:
            OBS.disable()
            OBS.reset()
            OBS.enabled = was_enabled

        assert np.array_equal(full.counts, resumed.counts)
        # Only the dropped cells were recomputed.
        assert counters.get("sybil.attack.cells", 0) == len(dropped)

    def test_resume_at_different_worker_count(self, honest, tmp_path):
        """The checkpoint fingerprint excludes execution knobs: a sweep
        checkpointed serially resumes under a thread pool, bit-identical."""
        ckpt = tmp_path / "ckpt"
        full = tiny_sweep(
            honest, policy=ExecutionPolicy(checkpoint_dir=str(ckpt))
        )
        for shard in sorted(ckpt.glob("adversarial-*/shard-*.npz"))[::2]:
            shard.unlink()
        resumed = tiny_sweep(
            honest,
            policy=ExecutionPolicy(
                workers=2, execution="threads", checkpoint_dir=str(ckpt)
            ),
        )
        assert np.array_equal(full.counts, resumed.counts)

    def test_seed_changes_the_attack(self, honest):
        a = tiny_sweep(honest, defenses=["sybilguard", "sybilrank"])
        b = tiny_sweep(honest, defenses=["sybilguard", "sybilrank"], seed=6)
        assert not np.array_equal(a.counts, b.counts)


# ----------------------------------------------------------------------
# run_defense_admission adapters
# ----------------------------------------------------------------------
class TestDefenseAdapters:
    @pytest.mark.parametrize("defense", ADVERSARIAL_DEFENSES)
    def test_verdict_vector_shape_and_dtype(self, honest, defense):
        scenario = build_attack_scenario(
            honest, "random", num_sybil=8, num_attack_edges=3, seed=1
        )
        suspects = np.concatenate(
            [np.arange(1, 9, dtype=np.int64), scenario.sybil_nodes()]
        )
        accepted = run_defense_admission(
            defense, scenario, suspects, seed=3, knobs=TINY_KNOBS
        )
        assert accepted.shape == (suspects.size,)
        assert accepted.dtype == bool

    def test_unknown_defense_rejected(self, honest):
        scenario = build_attack_scenario(
            honest, "random", num_sybil=8, num_attack_edges=3, seed=1
        )
        with pytest.raises(ConfigurationError, match="unknown defense"):
            run_defense_admission(
                "bogus", scenario, np.array([1]), seed=3, knobs=TINY_KNOBS
            )


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_empty_strategies_rejected(self, honest):
        with pytest.raises(ConfigurationError, match="at least one"):
            tiny_sweep(honest, strategies=[])

    def test_empty_budgets_rejected(self, honest):
        with pytest.raises(ConfigurationError, match="at least one"):
            tiny_sweep(honest, attack_budgets=[])

    def test_unknown_defense_in_sweep_rejected(self, honest):
        with pytest.raises(ConfigurationError, match="unknown defenses"):
            tiny_sweep(honest, defenses=["sybilguard", "bogus"])

    def test_nonzero_verifier_rejected(self, honest):
        with pytest.raises(ConfigurationError, match="node 0"):
            tiny_sweep(honest, verifier=3)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"route_length": 0},
            {"route_length": 5, "sybillimit_instances": 0},
            {"route_length": 5, "infer_samples": 0},
            {"route_length": 5, "sumup_c_max": 0},
            {"route_length": 5, "whanau_walk_length": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdversarialKnobs(**kwargs)

    def test_default_knobs_scale_with_graph(self):
        fast = default_adversarial_knobs(400)
        full = default_adversarial_knobs(400, fast=False)
        assert 4 <= fast.route_length <= 20
        assert 4 <= full.route_length <= 64
        assert fast.sybillimit_instances is not None
        assert full.sybillimit_instances is None
        assert full.infer_samples > fast.infer_samples
