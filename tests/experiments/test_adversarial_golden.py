"""Golden-value suite for the adversarial sweep.

``tests/data/adversarial_golden.json`` pins the full admission-count
grid of a tiny fixed-seed sweep (two strategies x three budgets x all
six defenses).  The suite re-runs that sweep

* serially and under a 2-worker thread pool — both must reproduce the
  pinned counts bit-for-bit, and
* under every registered SpMM backend — float64 backends bit-identical,
  float32 backends within the pinned count envelope (reduced precision
  may flip a near-tie in the SybilRank ranking, never more).

Regenerate (only after an intentional semantic change) with the
generator snippet in the JSON file's git history, and review the diff of
every pinned number.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    DEFAULT_BACKEND,
    ExecutionPolicy,
    available_backends,
    backend_numeric,
)
from repro.experiments import ADVERSARIAL_DEFENSES, AdversarialKnobs, adversarial_sweep
from repro.generators import erdos_renyi_gnm
from repro.graph import largest_connected_component

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "adversarial_golden.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def pinned_counts(golden):
    return np.asarray(golden["counts"], dtype=np.float64)


def run_pinned_sweep(golden, policy=None):
    spec = golden["graph"]
    graph, _ = largest_connected_component(
        erdos_renyi_gnm(spec["n"], spec["m"], seed=spec["seed"])
    )
    return adversarial_sweep(
        graph,
        knobs=AdversarialKnobs(**golden["knobs"]),
        defenses=tuple(golden["defenses"]),
        policy=policy,
        **golden["sweep"],
    )


def test_golden_file_well_formed(golden, pinned_counts):
    assert golden["defenses"] == list(ADVERSARIAL_DEFENSES)
    sweep = golden["sweep"]
    assert pinned_counts.shape == (
        len(sweep["strategies"]),
        len(sweep["sybil_sizes"]),
        len(sweep["attack_budgets"]),
        len(golden["defenses"]),
        4,
    )
    # Counts are integers and the g=0 column has no sybils.
    assert np.array_equal(pinned_counts, np.round(pinned_counts))
    assert np.all(pinned_counts[:, :, 0, :, 2:] == 0)


def test_serial_matches_golden(golden, pinned_counts):
    result = run_pinned_sweep(golden)
    assert np.array_equal(result.counts, pinned_counts)


def test_two_workers_match_golden(golden, pinned_counts):
    result = run_pinned_sweep(
        golden, policy=ExecutionPolicy(workers=2, execution="threads")
    )
    assert np.array_equal(result.counts, pinned_counts)


@pytest.mark.parametrize("backend", sorted(available_backends()))
def test_every_backend_reproduces_golden(backend, golden, pinned_counts):
    result = run_pinned_sweep(golden, policy=ExecutionPolicy(backend=backend))
    if backend == DEFAULT_BACKEND or backend_numeric(backend) == "float64":
        assert np.array_equal(result.counts, pinned_counts), backend
        return
    # float32: suspect totals are exact; accepted counts may drift by at
    # most the pinned envelope (a flipped near-tie in a ranking).
    tolerance = golden["float32_count_tolerance"]
    assert np.array_equal(result.counts[..., 0], pinned_counts[..., 0])
    assert np.array_equal(result.counts[..., 2], pinned_counts[..., 2])
    drift = np.abs(result.counts[..., (1, 3)] - pinned_counts[..., (1, 3)])
    assert drift.max() <= tolerance, f"{backend}: max count drift {drift.max()}"
