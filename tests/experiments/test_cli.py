"""Unit tests for the CLI (argument handling; heavy runners are mocked)."""

import pytest

from repro import cli


class TestParser:
    def test_defaults(self):
        args = cli.build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert not args.full
        assert args.seed is None

    def test_full_and_seed(self):
        args = cli.build_parser().parse_args(["fig3", "--full", "--seed", "7"])
        assert args.full
        assert args.seed == 7


class TestMain:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig8" in out

    def test_unknown_experiment(self, capsys):
        assert cli.main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_selected_experiment(self, capsys, monkeypatch):
        calls = []

        def fake(config):
            calls.append(config.mode)
            return "RESULT-TEXT"

        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", fake)
        assert cli.main(["fig1"]) == 0
        assert calls == ["fast"]
        out = capsys.readouterr().out
        assert "RESULT-TEXT" in out
        assert "finished in" in out

    def test_full_flag_propagates(self, monkeypatch, capsys):
        seen = {}

        def fake(config):
            seen["mode"] = config.mode
            seen["seed"] = config.seed
            return ""

        monkeypatch.setitem(cli.EXPERIMENTS, "fig2", fake)
        assert cli.main(["fig2", "--full", "--seed", "99"]) == 0
        assert seen == {"mode": "full", "seed": 99}

    def test_all_runs_everything(self, monkeypatch, capsys):
        ran = []
        for name in list(cli.EXPERIMENTS):
            monkeypatch.setitem(
                cli.EXPERIMENTS, name, (lambda n: lambda c: ran.append(n) or "")(name)
            )
        assert cli.main(["all"]) == 0
        assert set(ran) == set(cli.EXPERIMENTS)

    def test_experiment_registry_covers_all_figures(self):
        for name in ["table1"] + [f"fig{i}" for i in range(1, 9)]:
            assert name in cli.EXPERIMENTS


class TestOutputFlag:
    def test_writes_output_files(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", lambda c: "SERIES-DATA")
        assert cli.main(["fig1", "--output", str(tmp_path / "out")]) == 0
        written = (tmp_path / "out" / "fig1.txt").read_text()
        assert "SERIES-DATA" in written

    def test_no_output_flag_writes_nothing(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", lambda c: "X")
        assert cli.main(["fig1"]) == 0
        assert not (tmp_path / "fig1.txt").exists()


class TestDatasetsCommand:
    def test_lists_registry(self, capsys, monkeypatch):
        # Patch the loader so the test does not generate all 15 graphs.
        from repro.datasets import registry as reg
        from repro.graph import Graph

        import repro.datasets as ds

        monkeypatch.setattr(
            ds, "load_cached", lambda name: Graph.from_edges([(0, 1)]), raising=True
        )
        assert cli.main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("wiki_vote", "dblp", "livejournal_a"):
            assert name in out
        assert "paper: n=614,981" in out
