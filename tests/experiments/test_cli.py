"""Unit tests for the CLI (argument handling; heavy runners are mocked)."""

import pytest

from repro import cli
from repro.errors import (
    CheckpointCorruption,
    ConfigurationError,
    ReproError,
    RuntimeFailure,
    ScenarioError,
)


class TestParser:
    def test_defaults(self):
        args = cli.build_parser().parse_args(["table1"])
        assert args.experiment == "table1"
        assert not args.full
        assert args.seed is None

    def test_full_and_seed(self):
        args = cli.build_parser().parse_args(["fig3", "--full", "--seed", "7"])
        assert args.full
        assert args.seed == 7

    def test_runtime_flags(self):
        args = cli.build_parser().parse_args(
            [
                "fig1",
                "--workers", "2",
                "--block-size", "64",
                "--checkpoint-dir", "ckpt",
                "--no-resume",
                "--max-retries", "5",
                "--shard-timeout", "30",
            ]
        )
        assert args.workers == 2
        assert args.block_size == 64
        assert args.checkpoint_dir == "ckpt"
        assert args.no_resume
        assert args.max_retries == 5
        assert args.shard_timeout == 30.0

    @pytest.mark.parametrize("bad", ["0", "-2", "2.5", "two"])
    def test_invalid_workers_fail_at_parse_time(self, bad, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.build_parser().parse_args(["fig1", "--workers", bad])
        assert excinfo.value.code == 2
        assert "workers" in capsys.readouterr().err

    def test_backend_flag(self):
        args = cli.build_parser().parse_args(["fig1", "--backend", "tiled"])
        assert args.backend == "tiled"
        # Default is None: the policy's own default ("numpy") applies,
        # so omitting the flag never overrides config-provided policies.
        assert cli.build_parser().parse_args(["fig1"]).backend is None


class TestExitCodes:
    """Intentional library errors map to distinct exit codes with a
    clean one-line message — never a traceback."""

    def _run_with(self, monkeypatch, exc):
        def boom(config):
            raise exc

        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", boom)
        return cli.main(["fig1"])

    def test_configuration_error_is_2(self, monkeypatch, capsys):
        assert self._run_with(monkeypatch, ConfigurationError("bad knob")) == 2
        err = capsys.readouterr().err
        assert "ConfigurationError" in err
        assert "bad knob" in err
        assert "Traceback" not in err

    def test_generic_repro_error_is_3(self, monkeypatch, capsys):
        assert self._run_with(monkeypatch, ScenarioError("bad scenario")) == 3
        assert "ScenarioError" in capsys.readouterr().err

    def test_checkpoint_corruption_is_4(self, monkeypatch, capsys):
        assert self._run_with(monkeypatch, CheckpointCorruption("bad shard")) == 4
        err = capsys.readouterr().err
        assert "CheckpointCorruption" in err

    def test_runtime_failure_is_5(self, monkeypatch, capsys):
        assert self._run_with(monkeypatch, RuntimeFailure("pool gone")) == 5
        assert "RuntimeFailure" in capsys.readouterr().err

    def test_policy_validation_error_is_2(self, capsys, monkeypatch):
        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", lambda c: "")
        # Negative shard timeout passes argparse (it is a float) but
        # fails ExecutionPolicy validation → usage error, not traceback.
        assert cli.main(["fig1", "--shard-timeout", "-3"]) == 2
        err = capsys.readouterr().err
        assert "ConfigurationError" in err
        assert "shard_timeout" in err

    def test_unknown_backend_is_2(self, capsys, monkeypatch):
        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", lambda c: "")
        # An unregistered backend name passes argparse (free-form so
        # plugins can register their own) but fails ExecutionPolicy
        # validation → usage error with the registered names listed.
        assert cli.main(["fig1", "--backend", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "ConfigurationError" in err
        assert "unknown SpMM backend" in err
        assert "numpy" in err
        assert "Traceback" not in err

    def test_unexpected_exceptions_still_propagate(self, monkeypatch):
        def boom(config):
            raise ZeroDivisionError("bug")

        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", boom)
        with pytest.raises(ZeroDivisionError):
            cli.main(["fig1"])

    def test_exit_code_table_is_most_specific_first(self):
        seen = []
        for cls, _code in cli.EXIT_CODES:
            assert not any(issubclass(cls, earlier) for earlier in seen), (
                f"{cls.__name__} is unreachable: a superclass precedes it"
            )
            seen.append(cls)
        assert cli.EXIT_CODES[-1][0] is ReproError


class TestPolicyPlumbing:
    def test_checkpoint_flags_reach_config_policy(self, monkeypatch, tmp_path):
        seen = {}

        def fake(config):
            seen["policy"] = config.execution_policy
            return ""

        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", fake)
        assert (
            cli.main(
                [
                    "fig1",
                    "--workers", "2",
                    "--checkpoint-dir", str(tmp_path),
                    "--no-resume",
                    "--max-retries", "4",
                    "--shard-timeout", "12",
                ]
            )
            == 0
        )
        policy = seen["policy"]
        assert policy.workers == 2
        assert policy.checkpoint_dir == str(tmp_path)
        assert policy.resume is False
        assert policy.max_retries == 4
        assert policy.shard_timeout == 12.0

    def test_backend_flag_reaches_config_policy(self, monkeypatch):
        seen = {}

        def fake(config):
            seen["policy"] = config.execution_policy
            return ""

        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", fake)
        assert cli.main(["fig1", "--backend", "float32"]) == 0
        assert seen["policy"].backend == "float32"
        # Omitted flag → policy default, not an explicit override.
        assert cli.main(["fig1"]) == 0
        assert seen["policy"].backend == "numpy"


class TestMain:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "fig8" in out

    def test_unknown_experiment(self, capsys):
        assert cli.main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_selected_experiment(self, capsys, monkeypatch):
        calls = []

        def fake(config):
            calls.append(config.mode)
            return "RESULT-TEXT"

        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", fake)
        assert cli.main(["fig1"]) == 0
        assert calls == ["fast"]
        out = capsys.readouterr().out
        assert "RESULT-TEXT" in out
        assert "finished in" in out

    def test_full_flag_propagates(self, monkeypatch, capsys):
        seen = {}

        def fake(config):
            seen["mode"] = config.mode
            seen["seed"] = config.seed
            return ""

        monkeypatch.setitem(cli.EXPERIMENTS, "fig2", fake)
        assert cli.main(["fig2", "--full", "--seed", "99"]) == 0
        assert seen == {"mode": "full", "seed": 99}

    def test_all_runs_everything(self, monkeypatch, capsys):
        ran = []
        for name in list(cli.EXPERIMENTS):
            monkeypatch.setitem(
                cli.EXPERIMENTS, name, (lambda n: lambda c: ran.append(n) or "")(name)
            )
        assert cli.main(["all"]) == 0
        assert set(ran) == set(cli.EXPERIMENTS)

    def test_experiment_registry_covers_all_figures(self):
        for name in ["table1"] + [f"fig{i}" for i in range(1, 9)]:
            assert name in cli.EXPERIMENTS


class TestOutputFlag:
    def test_writes_output_files(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", lambda c: "SERIES-DATA")
        assert cli.main(["fig1", "--output", str(tmp_path / "out")]) == 0
        written = (tmp_path / "out" / "fig1.txt").read_text()
        assert "SERIES-DATA" in written

    def test_no_output_flag_writes_nothing(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setitem(cli.EXPERIMENTS, "fig1", lambda c: "X")
        assert cli.main(["fig1"]) == 0
        assert not (tmp_path / "fig1.txt").exists()


class TestDatasetsCommand:
    def test_lists_registry(self, capsys, monkeypatch):
        # Patch the loader so the test does not generate all 15 graphs.
        from repro.datasets import registry as reg
        from repro.graph import Graph

        import repro.datasets as ds

        monkeypatch.setattr(
            ds, "load_cached", lambda name: Graph.from_edges([(0, 1)]), raising=True
        )
        assert cli.main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("wiki_vote", "dblp", "livejournal_a"):
            assert name in out
        assert "paper: n=614,981" in out
