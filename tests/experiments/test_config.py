"""Unit tests for experiment configuration."""

import pytest

from repro.experiments import FAST, FULL, ExperimentConfig


class TestConfig:
    def test_modes(self):
        assert FAST.is_fast
        assert not FULL.is_fast

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ExperimentConfig(mode="medium")

    def test_fast_is_smaller_everywhere(self):
        assert FAST.sampled_sources < FULL.sampled_sources
        assert FAST.max_walk < FULL.max_walk
        assert len(FAST.figure8_walks) < len(FULL.figure8_walks)

    def test_full_brute_forces_physics(self):
        assert FULL.brute_force_sources is None
        assert FAST.brute_force_sources is not None

    def test_paper_parameters_in_full_mode(self):
        assert FULL.sampled_sources == 1000  # "we repeat this many times (i.e., 1000)"
        assert FULL.short_walks == (1, 5, 10, 20, 40)  # Figure 3 grid
        assert 500 in FULL.long_walks  # Figure 4 reaches w=500

    def test_figure7_sizes_ascending(self):
        for config in (FAST, FULL):
            sizes = config.figure7_sizes
            assert list(sizes) == sorted(sizes)
            assert len(sizes) == 3  # 10K / 100K / 1000K stand-ins

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FAST.mode = "full"
