"""Unit tests for experiment configuration."""

import pytest

from repro.core.runtime import ExecutionPolicy
from repro.errors import ConfigurationError
from repro.experiments import FAST, FULL, ExperimentConfig


class TestConfig:
    def test_modes(self):
        assert FAST.is_fast
        assert not FULL.is_fast

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ExperimentConfig(mode="medium")

    def test_fast_is_smaller_everywhere(self):
        assert FAST.sampled_sources < FULL.sampled_sources
        assert FAST.max_walk < FULL.max_walk
        assert len(FAST.figure8_walks) < len(FULL.figure8_walks)

    def test_full_brute_forces_physics(self):
        assert FULL.brute_force_sources is None
        assert FAST.brute_force_sources is not None

    def test_paper_parameters_in_full_mode(self):
        assert FULL.sampled_sources == 1000  # "we repeat this many times (i.e., 1000)"
        assert FULL.short_walks == (1, 5, 10, 20, 40)  # Figure 3 grid
        assert 500 in FULL.long_walks  # Figure 4 reaches w=500

    def test_figure7_sizes_ascending(self):
        for config in (FAST, FULL):
            sizes = config.figure7_sizes
            assert list(sizes) == sorted(sizes)
            assert len(sizes) == 3  # 10K / 100K / 1000K stand-ins

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FAST.mode = "full"


class TestConfigPolicy:
    """The ``policy=`` field and its bridge to the legacy knobs."""

    def test_default_policy_mirrors_legacy_knobs(self):
        config = ExperimentConfig(mode="fast", workers=3, evolution_block_size=64)
        policy = config.execution_policy
        assert policy.workers == 3
        assert policy.block_size == 64

    def test_explicit_policy_used_verbatim(self, tmp_path):
        policy = ExecutionPolicy(workers=2, checkpoint_dir=str(tmp_path))
        config = ExperimentConfig(mode="fast", policy=policy)
        assert config.execution_policy is policy

    def test_policy_plus_legacy_knobs_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            ExperimentConfig(mode="fast", policy=ExecutionPolicy(), workers=2)
        with pytest.raises(ConfigurationError, match="not both"):
            ExperimentConfig(
                mode="fast", policy=ExecutionPolicy(), evolution_block_size=8
            )

    def test_non_policy_object_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(mode="fast", policy={"workers": 2})

    def test_invalid_policy_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(mode="fast", policy=ExecutionPolicy(workers=-3))

    def test_telemetry_propagates_into_policy(self):
        config = ExperimentConfig(
            mode="fast", telemetry=True, policy=ExecutionPolicy(workers=2)
        )
        policy = config.execution_policy
        assert policy.telemetry is True
        assert policy.workers == 2

    def test_telemetry_propagates_without_policy(self):
        config = ExperimentConfig(mode="fast", telemetry=True)
        assert config.execution_policy.telemetry is True
