"""Parse-time validation of configuration knobs (workers, telemetry, CLI)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError, ReproError
from repro.experiments import ExperimentConfig, validate_workers


class TestValidateWorkers:
    @pytest.mark.parametrize("value", [None, -1, 1, 2, 64])
    def test_valid_values_pass_through(self, value):
        assert validate_workers(value) == value

    @pytest.mark.parametrize("value", [0, -2, -100])
    def test_bad_counts_rejected(self, value):
        with pytest.raises(ConfigurationError):
            validate_workers(value)

    @pytest.mark.parametrize("value", [2.5, "4", True, False])
    def test_non_integers_rejected(self, value):
        with pytest.raises(ConfigurationError):
            validate_workers(value)

    def test_error_is_catchable_as_repro_and_value_error(self):
        with pytest.raises(ReproError):
            validate_workers(0)
        with pytest.raises(ValueError):
            validate_workers(0)


class TestExperimentConfigConstruction:
    @pytest.mark.parametrize("value", [0, -2, 1.5])
    def test_bad_workers_rejected_at_construction(self, value):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(workers=value)

    def test_good_workers_accepted(self):
        assert ExperimentConfig(workers=-1).workers == -1
        assert ExperimentConfig(workers=4).workers == 4
        assert ExperimentConfig().workers is None

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(mode="medium")

    def test_telemetry_defaults_off(self):
        assert ExperimentConfig().telemetry is False
        assert ExperimentConfig(telemetry=True).telemetry is True


class TestCLIWorkersFlag:
    @pytest.mark.parametrize("raw", ["0", "-2", "2.5", "two"])
    def test_bad_workers_exit_with_usage_error(self, raw, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["fig1", "--workers", raw])
        assert excinfo.value.code == 2
        assert "workers" in capsys.readouterr().err

    @pytest.mark.parametrize("raw,expected", [("-1", -1), ("1", 1), ("3", 3)])
    def test_good_workers_parsed(self, raw, expected):
        args = build_parser().parse_args(["fig1", "--workers", raw])
        assert args.workers == expected


class TestCLITelemetryFlags:
    @pytest.fixture(autouse=True)
    def _restore_registry(self):
        from repro.obs import OBS

        was_enabled = OBS.enabled
        yield
        OBS.enabled = was_enabled
        OBS.reset()

    def test_metrics_and_trace_written(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        code = main(
            ["fig1", "--metrics-out", str(metrics), "--trace-out", str(trace)]
        )
        assert code == 0
        metrics_payload = json.loads(metrics.read_text(encoding="utf-8"))
        assert metrics_payload["schema"] == "repro.obs.metrics/v1"
        assert metrics_payload["counters"]  # something was recorded
        trace_payload = json.loads(trace.read_text(encoding="utf-8"))
        assert trace_payload["schema"] == "repro.obs.trace/v1"
        names = {s["name"] for s in trace_payload["spans"]}
        assert "experiment.fig1" in names

    def test_output_dir_gets_manifest(self, tmp_path, capsys):
        code = main(["fig1", "--output", str(tmp_path)])
        assert code == 0
        manifest_path = tmp_path / "fig1.manifest.json"
        assert manifest_path.exists()
        from repro.obs import validate_run_manifest

        manifest = validate_run_manifest(
            json.loads(manifest_path.read_text(encoding="utf-8"))
        )
        assert manifest["experiment"] == "fig1"
