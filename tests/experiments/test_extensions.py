"""Smoke + shape tests for the extension experiments (future-work runners)."""

import numpy as np
import pytest

from repro.datasets import load_cached
from repro.experiments import (
    FAST,
    run_sybilguard_admission,
    run_whanau_lookup,
    average_case_table,
    make_directed_standin,
    run_average_case,
    run_directed_conversion,
    run_trust_models,
    run_whanau_tails,
    tail_arc_distribution,
)


class TestWhanauTails:
    def test_tail_distribution_is_distribution(self):
        graph = load_cached("wiki_vote")
        q = tail_arc_distribution(graph, 10)
        assert q.size == 2 * graph.num_edges
        assert q.sum() == pytest.approx(1.0)
        assert q.min() >= 0

    def test_tail_distribution_converges_to_uniform(self):
        graph = load_cached("wiki_vote")
        uniform = 1.0 / (2 * graph.num_edges)
        q = tail_arc_distribution(graph, 200)
        assert np.abs(q - uniform).sum() < 1e-4

    def test_length_validation(self):
        graph = load_cached("wiki_vote")
        with pytest.raises(ValueError):
            tail_arc_distribution(graph, 0)

    def test_figure_shape_and_claim(self):
        fig = run_whanau_tails(FAST, datasets=("physics1", "wiki_vote"), walk_lengths=(10, 80))
        phys = {s.label: s for s in fig.panels["physics1"]}
        wiki = {s.label: s for s in fig.panels["wiki_vote"]}
        # Separation upper-bounds TVD everywhere.
        for panel in (phys, wiki):
            assert np.all(
                panel["separation distance"].y >= panel["TVD to uniform arcs"].y - 1e-12
            )
        # The critique: at w=80 the slow graph is still far from 1/n ...
        assert phys["TVD to uniform arcs"].y[-1] > 10 * phys["target eps = 1/n"].y[-1]
        # ... while the fast OSN is essentially converged.
        assert wiki["TVD to uniform arcs"].y[-1] < wiki["target eps = 1/n"].y[-1]


class TestAverageCase:
    def test_rows_and_ordering(self):
        rows = run_average_case(FAST, datasets=("physics1", "wiki_vote"), epsilon=0.1)
        by_name = {r.dataset: r for r in rows}
        for row in rows:
            assert row.mean <= row.worst
            assert row.median <= row.worst
            assert 0.0 <= row.within_15_steps <= 1.0
        # Average-case gap is the paper's Section 5/6 point.
        slow = by_name["physics1"]
        assert slow.mean < 0.8 * slow.worst
        # The fast OSN largely fits the literature's budget; physics not at all.
        assert by_name["wiki_vote"].within_15_steps > 0.5
        assert slow.within_15_steps == 0.0

    def test_table_render(self):
        rows = run_average_case(FAST, datasets=("wiki_vote",), epsilon=0.2)
        table = average_case_table(rows)
        assert table.rows[0][0] == "wiki_vote"


class TestTrustModels:
    def test_orderings(self):
        fig = run_trust_models(
            FAST, dataset="physics1", betas=(0.05, 0.2), num_sources=12,
            walk_lengths=(5, 20, 80),
        )
        series = {s.label: s for s in fig.panels["main"]}
        plain = series["plain walk"].y
        weighted = series["similarity-weighted walk"].y
        b_small = series["originator-biased beta=0.05"].y
        b_large = series["originator-biased beta=0.2"].y
        # Trust knobs slow mixing at the longest walk, monotonically.
        assert plain[-1] < b_small[-1] < b_large[-1]
        assert plain[-1] <= weighted[-1] + 1e-9
        # The bias floors: beta=0.2 keeps at least ~beta distance forever.
        assert b_large[-1] > 0.19


class TestDirectedConversion:
    def test_standin_orientation(self):
        graph = load_cached("wiki_vote")
        fully = make_directed_standin(graph, reciprocity=1.0, seed=1)
        assert fully.num_arcs == 2 * graph.num_edges
        oneway = make_directed_standin(graph, reciprocity=0.0, seed=1)
        assert oneway.num_arcs == graph.num_edges

    def test_reciprocity_validation(self):
        graph = load_cached("wiki_vote")
        with pytest.raises(ValueError):
            make_directed_standin(graph, reciprocity=1.5)

    def test_figure_series(self):
        fig = run_directed_conversion(
            FAST, dataset="wiki_vote", num_sources=8, walk_lengths=(5, 20, 60)
        )
        series = {s.label.split(" (")[0]: s for s in fig.panels["main"]}
        directed = series["directed walk"]
        undirected = series["undirected conversion"]
        # Both converge along the sweep.
        assert directed.y[-1] < directed.y[0]
        assert undirected.y[-1] < undirected.y[0]


class TestWhanauLookup:
    def test_success_rises_with_walk_length_on_slow_graph(self):
        fig = run_whanau_lookup(
            FAST, datasets=("physics1",), walk_lengths=(3, 40), num_lookups=150
        )
        s = fig.panels["main"][0]
        assert s.y[1] > s.y[0] + 0.2

    def test_fast_graph_high_floor(self):
        fig = run_whanau_lookup(
            FAST, datasets=("wiki_vote",), walk_lengths=(3, 20), num_lookups=150
        )
        assert fig.panels["main"][0].y.min() > 0.8


class TestSybilGuardAdmission:
    def test_admission_monotone_and_split(self):
        fig = run_sybilguard_admission(
            FAST,
            datasets=("physics1", "wiki_vote"),
            walk_lengths=(10, 80),
            sample_size=800,
            max_suspects=120,
        )
        series = {s.label.split(" ")[0]: s for s in fig.panels["main"]}
        slow = series["physics1"]
        fast = series["wiki_vote"]
        assert slow.y[-1] >= slow.y[0]
        assert fast.y[-1] > slow.y[-1]
        # The reference length annotation is present.
        assert "sqrt(n log n)" in fig.panels["main"][0].label


class TestReplication:
    def test_stats_shape(self):
        from repro.experiments import run_replication, replication_table

        stats = run_replication(FAST, datasets=("wiki_vote",), replicas=2)
        assert len(stats) == 1
        assert stats[0].mus.size == 2
        assert stats[0].t01_mean > 0
        table = replication_table(stats)
        assert table.rows[0][0] == "wiki_vote"

    def test_replica_count_validated(self):
        from repro.experiments import run_replication

        with pytest.raises(ValueError):
            run_replication(FAST, datasets=("wiki_vote",), replicas=1)
