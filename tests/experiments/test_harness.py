"""Unit tests for experiment result containers and renderers."""

import numpy as np
import pytest

from repro.experiments import FigureResult, Series, TableResult, render_figure, render_table


class TestTableResult:
    def test_column_lookup(self):
        table = TableResult(
            title="T", headers=["a", "b"], rows=[["1", "x"], ["2", "y"]]
        )
        assert table.column("b") == ["x", "y"]
        with pytest.raises(ValueError):
            table.column("missing")

    def test_render_alignment(self):
        table = TableResult(
            title="Demo", headers=["name", "value"], rows=[["longest-name", "7"]]
        )
        text = render_table(table)
        assert "Demo" in text
        assert "longest-name" in text
        lines = text.splitlines()
        header_line = next(l for l in lines if l.startswith("name"))
        assert "value" in header_line


class TestSeries:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            Series(label="s", x=np.asarray([1.0, 2.0]), y=np.asarray([1.0]))

    def test_coerces_to_float(self):
        s = Series(label="s", x=[1, 2], y=[3, 4])
        assert s.x.dtype == np.float64


class TestFigureResult:
    def make_figure(self):
        fig = FigureResult(title="F", xlabel="x", ylabel="y")
        fig.panels["main"] = [
            Series(label="a", x=np.arange(30), y=np.arange(30) * 2.0),
            Series(label="b", x=np.arange(3), y=np.asarray([0.0, 0.5, 1.0])),
        ]
        return fig

    def test_series_lookup(self):
        fig = self.make_figure()
        assert fig.series("main", "a").label == "a"
        with pytest.raises(KeyError):
            fig.series("main", "zzz")
        with pytest.raises(KeyError):
            fig.panel("other")

    def test_render_thins_long_series(self):
        fig = self.make_figure()
        text = render_figure(fig, max_points=5)
        assert "F" in text
        a_lines = [l for l in text.splitlines() if l.strip().startswith("x:")]
        assert len(a_lines[0].split()) <= 7  # "x:" + 5 values + margin

    def test_render_includes_notes(self):
        fig = self.make_figure()
        fig.notes = "important caveat"
        assert "important caveat" in render_figure(fig)

    def test_render_special_values(self):
        fig = FigureResult(title="F", xlabel="x", ylabel="y")
        fig.panels["main"] = [
            Series(label="odd", x=np.asarray([0.0, 1.0]), y=np.asarray([np.inf, 1e-9]))
        ]
        text = render_figure(fig)
        assert "inf" in text
        assert "1e-09" in text


class TestCsvExport:
    def test_table_csv(self):
        from repro.experiments import table_to_csv

        table = TableResult(title="T", headers=["a", "b"], rows=[["1", "x,y"]])
        csv_text = table_to_csv(table)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == '1,"x,y"'

    def test_figure_csv_long_format(self):
        from repro.experiments import figure_to_csv

        fig = FigureResult(title="F", xlabel="x", ylabel="y")
        fig.panels["p"] = [Series(label="s", x=np.asarray([1.0, 2.0]), y=np.asarray([3.0, 4.0]))]
        lines = figure_to_csv(fig).strip().splitlines()
        assert lines[0] == "panel,series,x,y"
        assert len(lines) == 3
        assert lines[1].startswith("p,s,1.0,3.0")

    def test_csv_roundtrips_through_csv_reader(self):
        import csv as csv_module
        import io

        from repro.experiments import table_to_csv

        table = TableResult(title="T", headers=["name"], rows=[['quo"te']])
        parsed = list(csv_module.reader(io.StringIO(table_to_csv(table))))
        assert parsed[1] == ['quo"te']
