"""Failure-path tests for :func:`repro.experiments.run_with_manifest`.

Pins the atomic-persistence contract: a runner that raises mid-run
leaves *nothing* behind (no manifest, no result text, no stray temp
files), and a crash injected inside the write path itself leaves the
previous on-disk artifact byte-identical.  The write protocol is
write-to-temp + fsync + atomic rename (:func:`repro._util.atomic_write_text`),
so observers see either the complete old file or the complete new file.
"""

from __future__ import annotations

import json
import os

import pytest

from repro._util import atomic_write_text
from repro.errors import ReproError
from repro.experiments import ExperimentConfig, run_with_manifest


class BoomError(ReproError):
    """Intentional failure injected into a runner."""


def _failing_runner(config):
    raise BoomError("injected mid-run failure")


def _listdir(path):
    return sorted(p.name for p in path.iterdir())


class TestRunnerFailureLeavesNoArtifacts:
    def test_raising_runner_writes_no_manifest(self, tmp_path):
        config = ExperimentConfig(mode="fast")
        with pytest.raises(BoomError):
            run_with_manifest("boom", _failing_runner, config, out_dir=tmp_path)
        assert _listdir(tmp_path) == []

    def test_raising_runner_leaves_no_temp_files(self, tmp_path):
        config = ExperimentConfig(mode="fast")
        with pytest.raises(BoomError):
            run_with_manifest("boom", _failing_runner, config, out_dir=tmp_path)
        assert not list(tmp_path.glob("*.tmp"))

    def test_raising_runner_preserves_previous_manifest(self, tmp_path):
        """A failed re-run must not clobber the manifest of an earlier
        successful run."""
        config = ExperimentConfig(mode="fast")
        ok = run_with_manifest("exp", lambda c: "fine", config, out_dir=tmp_path)
        assert ok[0] == "fine"
        manifest_path = tmp_path / "exp.manifest.json"
        before = manifest_path.read_bytes()
        with pytest.raises(BoomError):
            run_with_manifest("exp", _failing_runner, config, out_dir=tmp_path)
        assert manifest_path.read_bytes() == before

    def test_successful_run_writes_valid_json(self, tmp_path):
        config = ExperimentConfig(mode="fast")
        _, manifest, path = run_with_manifest(
            "exp", lambda c: "fine", config, out_dir=tmp_path
        )
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk["experiment"] == manifest["experiment"] == "exp"
        assert not list(tmp_path.glob("*.tmp"))


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text(encoding="utf-8") == "hello\n"

    def test_overwrites_existing_atomically(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old contents")
        atomic_write_text(target, "new contents")
        assert target.read_text(encoding="utf-8") == "new contents"
        assert _listdir(tmp_path) == ["out.txt"]

    def test_fsync_failure_preserves_old_file(self, tmp_path, monkeypatch):
        """A crash inside the write path leaves the target untouched and
        cleans up the temp file."""
        target = tmp_path / "out.txt"
        target.write_text("pristine")

        def broken_fsync(fd):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "fsync", broken_fsync)
        with pytest.raises(OSError, match="disk on fire"):
            atomic_write_text(target, "partial garbage")
        assert target.read_text(encoding="utf-8") == "pristine"
        assert _listdir(tmp_path) == ["out.txt"]

    def test_replace_failure_cleans_temp(self, tmp_path, monkeypatch):
        target = tmp_path / "out.txt"

        real_replace = os.replace

        def broken_replace(src, dst):
            raise OSError("rename rejected")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError, match="rename rejected"):
            atomic_write_text(target, "never lands")
        monkeypatch.setattr(os, "replace", real_replace)
        assert not target.exists()
        assert _listdir(tmp_path) == []

    def test_manifest_write_failure_keeps_previous_snapshot(
        self, tmp_path, monkeypatch
    ):
        """End-to-end: fsync dies while ``run_with_manifest`` persists the
        manifest — the old manifest survives byte-identical."""
        config = ExperimentConfig(mode="fast")
        run_with_manifest("exp", lambda c: "v1", config, out_dir=tmp_path)
        manifest_path = tmp_path / "exp.manifest.json"
        before = manifest_path.read_bytes()

        def broken_fsync(fd):
            raise OSError("power loss")

        monkeypatch.setattr(os, "fsync", broken_fsync)
        with pytest.raises(OSError, match="power loss"):
            run_with_manifest("exp", lambda c: "v2", config, out_dir=tmp_path)
        assert manifest_path.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp"))
