"""Execution-knob hygiene: runners route through ExecutionPolicy, and the
deprecated ``workers=``/``block_size=`` aliases warn exactly once per call.

"Exactly once" matters in both directions: zero means the alias silently
stopped being deprecated (or the warning got swallowed by a nested
``as_policy`` call converting an already-converted policy); more than
once means every layer of the sweep stack re-warns and real usage drowns
in noise.  Only the outermost conversion may speak.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.mixing import estimate_mixing_time, measure_mixing
from repro.core.walks import TransitionOperator
from repro.experiments import FAST
from repro.experiments.ablations import run_sybil_bound_ablation
from repro.generators import erdos_renyi_gnm
from repro.graph import largest_connected_component
from repro.sybil.scenario import no_attack_scenario
from repro.sybil.sybillimit import SybilLimit, SybilLimitParams


@pytest.fixture(scope="module")
def graph():
    return largest_connected_component(erdos_renyi_gnm(60, 180, seed=21))[0]


def _deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestAliasWarnsExactlyOncePerCall:
    def test_measure_mixing_legacy_kwargs(self, graph):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            measure_mixing(graph, [1, 2, 4], sources=[0, 1], workers=1, block_size=8)
        assert len(_deprecations(caught)) == 1

    def test_estimate_mixing_time_legacy_kwargs(self, graph):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            estimate_mixing_time(graph, 0.25, sources=[0, 1], workers=1)
        assert len(_deprecations(caught)) == 1

    def test_operator_methods_legacy_kwargs(self, graph):
        operator = TransitionOperator(graph)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            operator.variation_curves([0, 1], [1, 2], block_size=4)
        assert len(_deprecations(caught)) == 1
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            operator.hitting_times([0, 1], 0.25, workers=1)
        assert len(_deprecations(caught)) == 1

    def test_admission_sweep_legacy_kwargs(self, graph):
        protocol = SybilLimit(
            no_attack_scenario(graph), SybilLimitParams(route_length=4), seed=5
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            protocol.admission_sweep(0, [4], suspects=[1, 2], seed=5, workers=1)
        assert len(_deprecations(caught)) == 1

    def test_policy_path_emits_no_deprecation(self, graph):
        from repro.core.runtime import ExecutionPolicy

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            measure_mixing(
                graph,
                [1, 2, 4],
                sources=[0, 1],
                policy=ExecutionPolicy(workers=1, block_size=8),
            )
        assert not _deprecations(caught)


class TestRunnersAreFullyPolicyRouted:
    def test_sybil_bound_ablation_emits_no_deprecation(self):
        # This runner held the last direct admission_sweep call site that
        # bypassed config.execution_policy.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            table = run_sybil_bound_ablation(
                FAST,
                dataset="physics1",
                attack_edges=(2,),
                route_lengths=(10,),
                sybil_size=50,
            )
        assert len(table.rows) == 1
        assert not _deprecations(caught)

    def test_alias_answers_match_policy_answers(self, graph):
        from repro.core.runtime import ExecutionPolicy

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = measure_mixing(
                graph, [1, 2, 4], sources=[0, 1], workers=1, block_size=4
            )
        routed = measure_mixing(
            graph,
            [1, 2, 4],
            sources=[0, 1],
            policy=ExecutionPolicy(workers=1, block_size=4),
        )
        assert np.array_equal(legacy.distances, routed.distances)
