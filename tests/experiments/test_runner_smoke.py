"""Tier-1 smoke test: every experiment runner on tiny synthetic graphs.

Parametrised over the full CLI experiment registry, each case runs the
runner twice — ``workers=1`` (serial) and ``workers=2`` (shared-memory
pool) — on stand-in graphs a few dozen nodes big, and asserts

* the rendered output is **identical** across worker counts (the
  parallel runtime's bit-for-bit equivalence contract, end to end
  through real runners rather than operator micro-tests), and
* :func:`repro.experiments.run_with_manifest` emits a well-formed JSON
  run-manifest next to the results.

Dataset accessors are monkeypatched per experiments-module (runners bind
``load_cached``/``generate`` at import time), so no real stand-in
generation or disk cache is touched and the whole matrix stays fast.
"""

import importlib
import json
import pkgutil
import zlib

import pytest

import repro.experiments as experiments_pkg
from repro.cli import EXPERIMENTS
from repro.experiments import (
    ExperimentConfig,
    render_table,
    run_sampling_bias_ablation,
    run_with_manifest,
)
from repro.core import DEFAULT_BACKEND, ExecutionPolicy, available_backends
from repro.generators import erdos_renyi_gnm
from repro.graph import largest_connected_component
from repro.obs import MANIFEST_SCHEMA, validate_run_manifest

# ----------------------------------------------------------------------
# Tiny stand-ins
# ----------------------------------------------------------------------
_TINY_GRAPHS = {}


def _tiny_graph(key: str):
    graph = _TINY_GRAPHS.get(key)
    if graph is None:
        seed = (zlib.crc32(key.encode()) % 1009) + 1
        graph, _ = largest_connected_component(erdos_renyi_gnm(48, 180, seed=seed))
        _TINY_GRAPHS[key] = graph
    return graph


def _fake_load_cached(name, **_kwargs):
    return _tiny_graph(str(name))


def _fake_generate(spec, *, seed=None, **_kwargs):
    name = getattr(spec, "name", str(spec))
    return _tiny_graph(f"{name}-gen-{seed}")


class TinyConfig(ExperimentConfig):
    """Fast-mode config with every derived size shrunk to toy scale."""

    @property
    def sampled_sources(self) -> int:
        return 10

    @property
    def brute_force_sources(self):
        return 8

    @property
    def max_walk(self) -> int:
        return 12

    @property
    def figure7_sizes(self):
        return (16, 24)

    @property
    def figure8_walks(self):
        return (2, 4, 8)

    @property
    def trim_walks(self):
        return (2, 4)

    @property
    def adversarial_strategies(self):
        return ("random", "targeted")

    @property
    def adversarial_sybil_sizes(self):
        return (16,)

    @property
    def adversarial_budgets(self):
        return (0, 2, 5)


def _tiny_config(workers, backend=None):
    # policy= and legacy workers= are mutually exclusive on the config,
    # so a backend override carries the worker count on the policy.
    knobs = (
        {"workers": workers}
        if backend is None
        else {"policy": ExecutionPolicy(workers=workers, backend=backend)}
    )
    return TinyConfig(
        mode="fast",
        seed=123,
        epsilon_grid=(0.25, 0.1),
        short_walks=(1, 2, 4),
        long_walks=(4, 6),
        **knobs,
    )


@pytest.fixture
def tiny_datasets(monkeypatch):
    """Swap every experiments-module dataset accessor for tiny fakes."""
    for modinfo in pkgutil.iter_modules(experiments_pkg.__path__):
        module = importlib.import_module(f"repro.experiments.{modinfo.name}")
        if hasattr(module, "load_cached"):
            monkeypatch.setattr(module, "load_cached", _fake_load_cached)
        if hasattr(module, "generate"):
            monkeypatch.setattr(module, "generate", _fake_generate)


# ----------------------------------------------------------------------
# The smoke matrix
# ----------------------------------------------------------------------
#: Runners whose keyword defaults assume paper-scale graphs get the same
#: runner with toy-sized knobs (the config shrinks everything else).
_OVERRIDES = {
    "ablation-sampling-bias": lambda c: render_table(
        run_sampling_bias_ablation(c, sample_size=24, trials=2)
    ),
}


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_runner_smoke_serial_vs_parallel(name, tiny_datasets, tmp_path):
    runner = _OVERRIDES.get(name, EXPERIMENTS[name])

    serial_out, serial_manifest, manifest_path = run_with_manifest(
        name, runner, _tiny_config(workers=1), out_dir=tmp_path
    )
    parallel_out, _m, _p = run_with_manifest(
        name, runner, _tiny_config(workers=2)
    )

    # Identical rendered output: the parallel runtime may not change a
    # single character of any table or series.
    assert parallel_out == serial_out

    # Well-formed manifest, written next to the results.
    assert manifest_path is not None and manifest_path.exists()
    on_disk = json.loads(manifest_path.read_text(encoding="utf-8"))
    validate_run_manifest(on_disk)
    assert on_disk["schema"] == MANIFEST_SCHEMA
    assert on_disk["experiment"] == name
    assert on_disk["seed"] == 123
    assert on_disk["config"]["workers"] == 1
    assert "metrics" in on_disk and "counters" in on_disk["metrics"]
    # In-memory manifest matches what was written (modulo timestamps).
    assert serial_manifest["experiment"] == on_disk["experiment"]


@pytest.mark.parametrize("backend", sorted(available_backends()))
def test_fig3_runner_backend_serial_vs_parallel(backend, tiny_datasets):
    """The fig3 runner under every SpMM backend, workers 1 vs 2: worker
    count never changes rendered output, and float64 backends reproduce
    the numpy-backed rendering character for character."""
    runner = EXPERIMENTS["fig3"]
    serial = runner(_tiny_config(workers=1, backend=backend))
    parallel = runner(_tiny_config(workers=2, backend=backend))
    assert parallel == serial
    if backend != DEFAULT_BACKEND:
        from repro.core import backend_numeric

        if backend_numeric(backend) == "float64":
            oracle = runner(_tiny_config(workers=1, backend=DEFAULT_BACKEND))
            assert serial == oracle
