"""Smoke + shape tests for the experiment runners.

These run the real pipelines on the *smallest* dataset stand-ins (and
reduced parameters) so the whole file stays under ~2 minutes; the
full-size reproductions live in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.core import measure_mixing
from repro.datasets import load_cached
from repro.experiments import (
    FAST,
    bound_vs_sampling_figure,
    cdf_figure,
    lower_bound_figure,
    measure_physics,
    run_conductance_ablation,
    run_figure8,
    run_sampling_bias_ablation,
    run_sybil_bound_ablation,
    run_table1,
    table1_result,
    trim_levels,
    trim_summary_table,
)
from repro.experiments.admission import admission_curve


class TestTable1:
    def test_two_datasets(self):
        rows = run_table1(FAST, names=["physics1", "wiki_vote"])
        assert [r.name for r in rows] == ["physics1", "wiki_vote"]
        for row in rows:
            assert 0 < row.mu < 1
            assert row.nodes > 0
        # The acquaintance graph must mix slower than the OSN.
        assert rows[0].mu > rows[1].mu

    def test_render(self):
        rows = run_table1(FAST, names=["physics1"])
        table = table1_result(rows)
        text_cols = table.headers
        assert "mu" in text_cols
        assert table.rows[0][0] == "Physics 1"


class TestLowerBoundFigures:
    def test_figure_from_precomputed_mus(self):
        mus = {"physics1": 0.997, "wiki_vote": 0.87}
        fig = lower_bound_figure(["physics1", "wiki_vote"], FAST, title="t", mus=mus)
        series = fig.panels["main"]
        assert len(series) == 2
        phys = fig.series("main", "Physics 1")
        wiki = fig.series("main", "Wiki-vote")
        # Slower graph needs longer walks at every epsilon.
        assert np.all(phys.y >= wiki.y)

    def test_bound_values_match_formula(self):
        from repro.core import mixing_time_lower_bound

        fig = lower_bound_figure(["physics1"], FAST, title="t", mus={"physics1": 0.99})
        s = fig.panels["main"][0]
        for eps, length in zip(s.x[:5], s.y[:5]):
            assert length == pytest.approx(mixing_time_lower_bound(0.99, eps))


class TestCdfFigures:
    def test_cdf_panels(self):
        measurements = measure_physics([1, 5, 10], FAST, names=["physics1"])
        fig = cdf_figure(measurements, [1, 5, 10], title="t")
        series = fig.panels["physics1"]
        assert [s.label for s in series] == ["w=1", "w=5", "w=10"]
        for s in series:
            assert np.all(np.diff(s.y) >= 0)  # CDFs are nondecreasing

    def test_longer_walks_stochastically_smaller(self):
        measurements = measure_physics([1, 40], FAST, names=["physics1"])
        fig = cdf_figure(measurements, [1, 40], title="t")
        w1 = fig.series("physics1", "w=1")
        w40 = fig.series("physics1", "w=40")
        assert np.median(w40.x) < np.median(w1.x)


class TestBoundVsSampling:
    def test_band_ordering_and_bound(self):
        measurements = measure_physics([5, 20, 80], FAST, names=["physics1"])
        from repro.core import slem

        mus = {"physics1": slem(load_cached("physics1"))}
        fig = bound_vs_sampling_figure(measurements, mus, title="t")
        series = {s.label: s for s in fig.panels["physics1"]}
        best = series["best 10% of sources"]
        worst = series["worst 10% of sources (top 99.9%)"]
        assert np.all(best.y <= worst.y + 1e-12)
        assert "SLEM lower bound" in series


class TestTrimming:
    def test_levels_shrink_and_summary(self):
        levels = trim_levels(FAST, dataset="physics1", degrees=(1, 2, 3))
        sizes = [lvl.graph.num_nodes for lvl in levels]
        assert sizes == sorted(sizes, reverse=True)
        table = trim_summary_table(levels)
        assert len(table.rows) == 3

    def test_trimming_improves_average_mixing(self):
        levels = trim_levels(FAST, dataset="physics1", degrees=(1, 3))
        # At the longest shared checkpoint, the trimmed graph's average
        # distance must not be worse.
        assert levels[1].avg_distance[-1] <= levels[0].avg_distance[-1] * 1.3


class TestAdmission:
    def test_admission_curve_rises(self):
        curve = admission_curve("physics1", FAST, max_suspects=120)
        assert curve.admission_rates[-1] > curve.admission_rates[0]
        assert curve.admission_rates[-1] > 0.9
        assert curve.num_instances > 50

    def test_walk_length_for_target(self):
        curve = admission_curve("physics1", FAST, max_suspects=120)
        w = curve.walk_length_for(0.9)
        assert w is not None
        assert w > 15  # the paper's point: way beyond SybilLimit's 10-15
        assert curve.walk_length_for(2.0) is None

    def test_run_figure8_subset(self):
        fig = run_figure8(FAST, datasets={"physics1": 800})
        series = fig.panels["main"]
        assert len(series) == 1
        assert series[0].y.max() <= 100.0


class TestAblations:
    def test_conductance_table(self):
        table = run_conductance_ablation(FAST, datasets=["physics1", "wiki_vote"])
        assert len(table.rows) == 2
        for row in table.rows:
            one_minus_mu = float(row[2])
            sweep_phi = float(row[3])
            cheeger_hi = float(row[4])
            assert one_minus_mu <= sweep_phi + 1e-6
            assert sweep_phi <= cheeger_hi + 1e-6

    def test_sybil_bound_table(self):
        table = run_sybil_bound_ablation(
            FAST,
            dataset="physics1",
            attack_edges=(2,),
            route_lengths=(10, 60),
            sybil_size=100,
        )
        assert len(table.rows) == 2
        accepted = [int(row[2]) for row in table.rows]
        assert accepted[1] >= accepted[0]  # more sybils at longer walks

    def test_sampling_bias_table(self):
        table = run_sampling_bias_ablation(FAST, dataset="dblp", sample_size=800, trials=2)
        values = {row[0]: float(row[2]) for row in table.rows}
        assert values["BFS sample"] <= values["full graph"] + 1e-6


class TestFullModeSmoke:
    def test_full_config_runs_cheap_paths(self):
        """The --full code path must work end to end (exercised on the
        cheap runners; the heavy ones only differ in loop sizes)."""
        from repro.experiments import FULL, lower_bound_figure, run_table1

        rows = run_table1(FULL, names=["wiki_vote"])
        assert rows[0].mu > 0
        fig = lower_bound_figure(["wiki_vote"], FULL, title="t", mus={"wiki_vote": 0.9})
        assert fig.panels["main"][0].y.size > 0

    def test_full_walk_grids_superset_of_fast(self):
        from repro.experiments import FAST, FULL

        assert set(FAST.figure8_walks) <= set(FULL.figure8_walks) | {320}
        assert FULL.max_walk >= FAST.max_walk
