"""fig3-over-time runner: shape, determinism, worker-count invariance.

The acceptance criterion under test: the TVD trend curves are
**bit-identical** at workers 1 vs 2.  Everything downstream of the
temporal datasets is deterministic, so any drift means a runner is
leaking execution order into numerics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExecutionPolicy
from repro.experiments import ExperimentConfig, run_fig3_over_time, trend_measurements
from repro.experiments.harness import FigureResult

_NAME = "temporal_mathoverflow"


def _config(workers=None) -> ExperimentConfig:
    policy = None if workers is None else ExecutionPolicy(workers=workers, execution="threads")
    return ExperimentConfig(mode="fast", policy=policy)


@pytest.fixture(scope="module")
def tiny_trend():
    return trend_measurements(_config(), names=(_NAME,))


class TestTrendMeasurements:
    def test_shapes_track_config(self, tiny_trend):
        config = _config()
        data = tiny_trend[_NAME]
        mixing, spectra = data["mixing"], data["slem"]
        assert len(mixing.times) <= config.trend_windows
        assert mixing.times == spectra.times
        assert mixing.walk_lengths == config.short_walks
        assert mixing.distances.shape == (
            len(mixing.times),
            len(mixing.sources),
            len(config.short_walks),
        )
        assert len(mixing.sources) <= config.trend_sources

    def test_warm_path_engaged(self, tiny_trend):
        spectra = tiny_trend[_NAME]["slem"]
        # First window is necessarily cold; the sampled boundaries that
        # follow may fall back when the inter-window delta is large, but
        # the stream is built so at least one window warm-starts.
        assert not spectra.warm_started[0]
        assert spectra.slem.min() > 0.0 and spectra.slem.max() < 1.0

    def test_workers_1_vs_2_bit_identical(self, tiny_trend):
        two = trend_measurements(_config(workers=2), names=(_NAME,))
        a, b = tiny_trend[_NAME], two[_NAME]
        assert a["mixing"].times == b["mixing"].times
        assert a["mixing"].sources == b["mixing"].sources
        assert np.array_equal(a["mixing"].distances, b["mixing"].distances)
        assert a["mixing"].distances.tobytes() == b["mixing"].distances.tobytes()
        assert a["slem"].slem.tobytes() == b["slem"].slem.tobytes()

    def test_deterministic_across_calls(self, tiny_trend):
        again = trend_measurements(_config(), names=(_NAME,))
        assert (
            tiny_trend[_NAME]["mixing"].distances.tobytes()
            == again[_NAME]["mixing"].distances.tobytes()
        )


class TestRunFig3OverTime:
    def test_figure_structure(self, tiny_trend, monkeypatch):
        # Reuse the module-scoped measurements so the figure test does
        # not pay for a second full sweep over all three datasets.
        import repro.experiments.temporal as mod

        monkeypatch.setattr(mod, "trend_measurements", lambda config: tiny_trend)
        figure = run_fig3_over_time(_config())
        assert isinstance(figure, FigureResult)
        assert set(figure.panels) == {_NAME}
        series = figure.panels[_NAME]
        labels = [s.label for s in series]
        config = _config()
        assert labels == [f"w={w}" for w in config.short_walks] + ["slem"]
        for s in series:
            assert s.x.shape == s.y.shape
            assert np.isfinite(s.y).all()
        # TVD series live in [0, 1]; the slem series strictly inside.
        for s in series[:-1]:
            assert (s.y >= 0).all() and (s.y <= 1).all()
        assert (series[-1].y > 0).all() and (series[-1].y < 1).all()
