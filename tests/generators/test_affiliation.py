"""Unit tests for the affiliation (co-authorship) generator."""

import numpy as np
import pytest

from repro.generators import affiliation_coauthorship
from repro.graph import (
    average_clustering,
    core_numbers,
    largest_connected_component,
    trim_min_degree,
)


class TestAffiliation:
    def test_basic_shape(self):
        g, labels = affiliation_coauthorship(500, 1200, seed=1)
        assert g.num_nodes == 500
        assert labels.size == 500
        assert g.num_edges > 0

    def test_edge_budget_approximate(self):
        g, _ = affiliation_coauthorship(3000, 6000, seed=2)
        # Dedup across papers loses some edges; stay within a loose band.
        assert 0.5 * 6000 <= g.num_edges <= 1.2 * 6000

    def test_high_clustering(self):
        """Clique unions must be far more clustered than a degree-matched
        configuration model."""
        g, _ = affiliation_coauthorship(1500, 4000, seed=3)
        lcc, _ = largest_connected_component(g)
        assert average_clustering(lcc) > 0.3

    def test_nontrivial_core_structure(self):
        """The k-core must survive trimming (the DBLP/Figure 6 property)."""
        g, _ = affiliation_coauthorship(3000, 6000, seed=4)
        lcc, _ = largest_connected_component(g)
        core5, _ = trim_min_degree(lcc, 5)
        assert core5.num_nodes > 0.03 * lcc.num_nodes
        assert core_numbers(lcc).max() >= 5

    def test_deterministic(self):
        a, la = affiliation_coauthorship(400, 900, seed=5)
        b, lb = affiliation_coauthorship(400, 900, seed=5)
        assert a == b
        assert np.array_equal(la, lb)

    def test_mu_frac_zero_isolates_communities(self):
        g, labels = affiliation_coauthorship(
            800, 2000, mu_frac=0.0, num_communities=8, seed=6
        )
        edges = g.edges()
        cross = (labels[edges[:, 0]] != labels[edges[:, 1]]).sum()
        assert cross == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            affiliation_coauthorship(1, 10)
        with pytest.raises(ValueError):
            affiliation_coauthorship(100, 10, mu_frac=2.0)
        with pytest.raises(ValueError):
            affiliation_coauthorship(100, 0)
        with pytest.raises(ValueError):
            affiliation_coauthorship(100, 10, paper_size_min=1)
