"""Unit tests for community-structured generators."""

import numpy as np
import pytest

from repro.core import slem
from repro.generators import (
    community_powerlaw,
    planted_partition,
    stochastic_block_model,
    two_community_bridge,
)
from repro.graph import conductance_of_set, is_connected, largest_connected_component


class TestSBM:
    def test_shapes_and_labels(self):
        probs = np.asarray([[0.3, 0.01], [0.01, 0.3]])
        g, labels = stochastic_block_model([50, 70], probs, seed=1)
        assert g.num_nodes == 120
        assert labels.tolist() == [0] * 50 + [1] * 70

    def test_edge_counts_concentrate(self):
        probs = np.asarray([[0.2, 0.02], [0.02, 0.2]])
        g, labels = stochastic_block_model([200, 200], probs, seed=2)
        intra_expected = 2 * 0.2 * (200 * 199 / 2)
        cross_expected = 0.02 * 200 * 200
        cross = sum(1 for u, v in g.iter_edges() if labels[u] != labels[v])
        intra = g.num_edges - cross
        assert intra == pytest.approx(intra_expected, rel=0.1)
        assert cross == pytest.approx(cross_expected, rel=0.25)

    def test_asymmetric_probs_rejected(self):
        probs = np.asarray([[0.1, 0.2], [0.3, 0.1]])
        with pytest.raises(ValueError):
            stochastic_block_model([10, 10], probs)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            stochastic_block_model([10], np.asarray([[1.5]]))

    def test_empty_block_rejected(self):
        with pytest.raises(ValueError):
            stochastic_block_model([0, 10], np.full((2, 2), 0.1))

    def test_zero_prob_block_pair(self):
        probs = np.asarray([[0.5, 0.0], [0.0, 0.5]])
        g, labels = stochastic_block_model([30, 30], probs, seed=3)
        cross = sum(1 for u, v in g.iter_edges() if labels[u] != labels[v])
        assert cross == 0


class TestPlantedPartition:
    def test_stronger_communities_mix_slower(self):
        mus = []
        for p_out in (0.002, 0.01, 0.05):
            g, _ = planted_partition(4, 100, 0.2, p_out, seed=4)
            lcc, _ = largest_connected_component(g)
            mus.append(slem(lcc))
        assert mus[0] > mus[1] > mus[2]


class TestCommunityPowerlaw:
    def test_labels_cover_nodes(self):
        g, labels = community_powerlaw(1000, 2.4, 0.1, seed=5)
        assert labels.size == 1000
        assert labels.min() == 0

    def test_mu_frac_controls_cut(self):
        """Cross-community edge fraction tracks mu_frac."""
        for mu_frac in (0.05, 0.3):
            g, labels = community_powerlaw(
                2000, 2.4, mu_frac, target_edges=6000, num_communities=10, seed=6
            )
            edges = g.edges()
            cross = (labels[edges[:, 0]] != labels[edges[:, 1]]).mean()
            assert cross == pytest.approx(mu_frac, abs=0.35 * mu_frac + 0.02)

    def test_smaller_mu_frac_slower_mixing(self):
        mus = []
        for mu_frac in (0.02, 0.1, 0.5):
            g, _ = community_powerlaw(
                1500, 2.4, mu_frac, target_edges=6000, num_communities=15, seed=7
            )
            lcc, _ = largest_connected_component(g)
            mus.append(slem(lcc))
        assert mus[0] > mus[1] > mus[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            community_powerlaw(100, 2.4, 1.5)


class TestTwoCommunityBridge:
    def test_structure(self):
        g, labels = two_community_bridge(50, 6, 3, seed=8)
        assert g.num_nodes == 100
        assert labels.tolist() == [0] * 50 + [1] * 50
        cross = sum(1 for u, v in g.iter_edges() if labels[u] != labels[v])
        assert cross == 3

    def test_connected(self):
        g, _ = two_community_bridge(40, 4, 1, seed=9)
        assert is_connected(g)

    def test_conductance_matches_bridges(self):
        g, labels = two_community_bridge(100, 8, 2, seed=10)
        side = np.flatnonzero(labels == 0)
        phi = conductance_of_set(g, side)
        assert phi == pytest.approx(2 / (100 * 8 + 2), rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            two_community_bridge(50, 4, 0)
        with pytest.raises(ValueError):
            two_community_bridge(50, 4, 51)
