"""Unit tests for power-law degree sequences and configuration model."""

import numpy as np
import pytest

from repro.generators import (
    fit_powerlaw_exponent,
    powerlaw_configuration_model,
    powerlaw_degree_sequence,
)


class TestDegreeSequence:
    def test_respects_bounds(self):
        deg = powerlaw_degree_sequence(500, 2.5, k_min=2, k_max=40, seed=1)
        assert deg.min() >= 2
        assert deg.max() <= 41  # +1 possible from the even-sum bump

    def test_even_sum(self):
        for seed in range(5):
            deg = powerlaw_degree_sequence(101, 2.2, seed=seed)
            assert deg.sum() % 2 == 0

    def test_target_edges_hit(self):
        target = 3000
        deg = powerlaw_degree_sequence(1000, 2.5, target_edges=target, seed=2)
        assert deg.sum() == pytest.approx(2 * target, rel=0.05)

    def test_heavier_tail_for_smaller_gamma(self):
        d1 = powerlaw_degree_sequence(4000, 2.0, k_min=1, seed=3)
        d2 = powerlaw_degree_sequence(4000, 3.5, k_min=1, seed=3)
        assert d1.mean() > d2.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(0, 2.5)
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(10, 1.0)
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(10, 2.5, k_min=0)

    def test_default_cutoff_scales_with_n(self):
        deg = powerlaw_degree_sequence(10000, 2.1, seed=4)
        assert deg.max() <= 4 * np.sqrt(10000) + 1


class TestConfigurationModel:
    def test_size(self):
        g = powerlaw_configuration_model(800, 2.5, target_edges=2400, seed=1)
        assert g.num_nodes == 800
        assert g.num_edges == pytest.approx(2400, rel=0.1)

    def test_deterministic(self):
        a = powerlaw_configuration_model(200, 2.3, seed=5)
        b = powerlaw_configuration_model(200, 2.3, seed=5)
        assert a == b

    def test_degree_tail_is_heavy(self):
        g = powerlaw_configuration_model(5000, 2.2, k_min=1, target_edges=10000, seed=6)
        deg = g.degrees
        assert deg.max() > 10 * np.median(deg[deg > 0])


class TestExponentFit:
    def test_recovers_exponent(self):
        deg = powerlaw_degree_sequence(50_000, 2.5, k_min=3, k_max=100_000, seed=7)
        gamma = fit_powerlaw_exponent(deg, k_min=3)
        assert gamma == pytest.approx(2.5, abs=0.2)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fit_powerlaw_exponent(np.asarray([1, 1]), k_min=5)
