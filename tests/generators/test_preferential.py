"""Unit tests for preferential-attachment generators."""

import numpy as np
import pytest

from repro.generators import barabasi_albert, holme_kim
from repro.graph import average_clustering, is_connected


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert(200, 3, seed=1)
        # m seed-star edges + 3 per arriving node.
        assert g.num_edges == 3 + 3 * (200 - 4)

    def test_connected(self):
        assert is_connected(barabasi_albert(500, 2, seed=2))

    def test_hub_emerges(self):
        g = barabasi_albert(2000, 2, seed=3)
        assert g.degrees.max() > 20 * g.degrees[np.argsort(g.degrees)[1000]]

    def test_min_degree(self):
        g = barabasi_albert(300, 4, seed=4)
        assert g.degrees.min() >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0)
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)

    def test_deterministic(self):
        assert barabasi_albert(100, 2, seed=9) == barabasi_albert(100, 2, seed=9)


class TestHolmeKim:
    def test_connected(self):
        assert is_connected(holme_kim(400, 3, 0.5, seed=1))

    def test_triad_closure_raises_clustering(self):
        plain = holme_kim(800, 4, 0.0, seed=2)
        clustered = holme_kim(800, 4, 0.9, seed=2)
        assert average_clustering(clustered) > 2 * average_clustering(plain)

    def test_triad_prob_zero_like_ba(self):
        g = holme_kim(300, 3, 0.0, seed=3)
        assert g.degrees.min() >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            holme_kim(100, 3, 1.5)
        with pytest.raises(ValueError):
            holme_kim(100, 0, 0.5)
        with pytest.raises(ValueError):
            holme_kim(3, 3, 0.5)

    def test_deterministic(self):
        assert holme_kim(150, 3, 0.4, seed=11) == holme_kim(150, 3, 0.4, seed=11)
