"""Unit tests for ER and random regular generators."""

import numpy as np
import pytest

from repro.generators import erdos_renyi_gnm, erdos_renyi_gnp, random_regular


class TestGnm:
    def test_exact_counts(self):
        g = erdos_renyi_gnm(100, 300, seed=1)
        assert g.num_nodes == 100
        assert g.num_edges == 300

    def test_zero_edges(self):
        g = erdos_renyi_gnm(10, 0, seed=2)
        assert g.num_edges == 0

    def test_complete(self):
        g = erdos_renyi_gnm(8, 28, seed=3)
        assert g.num_edges == 28
        assert np.all(g.degrees == 7)

    def test_m_out_of_range(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(5, 11)
        with pytest.raises(ValueError):
            erdos_renyi_gnm(5, -1)

    def test_deterministic(self):
        assert erdos_renyi_gnm(50, 120, seed=7) == erdos_renyi_gnm(50, 120, seed=7)

    def test_different_seeds_differ(self):
        assert erdos_renyi_gnm(50, 120, seed=7) != erdos_renyi_gnm(50, 120, seed=8)

    def test_dense_regime_path(self):
        # max_edges <= 4m triggers the choice-without-replacement path.
        g = erdos_renyi_gnm(20, 120, seed=4)
        assert g.num_edges == 120

    def test_no_self_loops(self):
        g = erdos_renyi_gnm(30, 100, seed=5)
        for u, v in g.iter_edges():
            assert u != v

    def test_degree_distribution_binomial_ish(self):
        g = erdos_renyi_gnm(2000, 10000, seed=6)
        mean_deg = g.degrees.mean()
        assert mean_deg == pytest.approx(10.0, rel=0.01)
        assert g.degrees.std() == pytest.approx(np.sqrt(10), rel=0.2)


class TestGnp:
    def test_edge_count_concentrates(self):
        n, p = 200, 0.1
        g = erdos_renyi_gnp(n, p, seed=1)
        expected = p * n * (n - 1) / 2
        assert abs(g.num_edges - expected) < 4 * np.sqrt(expected)

    def test_p_zero_and_one(self):
        assert erdos_renyi_gnp(10, 0.0, seed=2).num_edges == 0
        assert erdos_renyi_gnp(10, 1.0, seed=3).num_edges == 45

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnp(10, 1.5)


class TestRandomRegular:
    def test_exact_regularity(self):
        g = random_regular(60, 4, seed=1)
        assert np.all(g.degrees == 4)

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            random_regular(5, 3)

    def test_d_out_of_range(self):
        with pytest.raises(ValueError):
            random_regular(5, 5)

    def test_zero_regular(self):
        g = random_regular(6, 0, seed=2)
        assert g.num_edges == 0

    def test_stationary_is_uniform(self, regular_graph):
        from repro.core import stationary_distribution, uniform_distribution

        pi = stationary_distribution(regular_graph)
        assert np.allclose(pi, uniform_distribution(regular_graph.num_nodes))
