"""Unit tests for Watts–Strogatz small-world graphs."""

import numpy as np
import pytest

from repro.core import slem
from repro.generators import ring_lattice, watts_strogatz
from repro.graph import average_clustering, is_connected


class TestRingLattice:
    def test_regularity(self):
        g = ring_lattice(20, 4)
        assert np.all(g.degrees == 4)
        assert g.num_edges == 40

    def test_k_zero(self):
        assert ring_lattice(5, 0).num_edges == 0

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            ring_lattice(10, 3)

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            ring_lattice(4, 4)

    def test_neighbours_are_closest(self):
        g = ring_lattice(12, 4)
        assert sorted(g.neighbors(0).tolist()) == [1, 2, 10, 11]


class TestWattsStrogatz:
    def test_p_zero_is_lattice(self):
        assert watts_strogatz(30, 4, 0.0, seed=1) == ring_lattice(30, 4)

    def test_edge_count_preserved(self):
        g = watts_strogatz(100, 6, 0.3, seed=2)
        assert g.num_edges == 300

    def test_rewiring_reduces_clustering(self):
        lattice = watts_strogatz(300, 8, 0.0, seed=3)
        rewired = watts_strogatz(300, 8, 0.8, seed=3)
        assert average_clustering(rewired) < average_clustering(lattice)

    def test_rewiring_speeds_mixing(self):
        """The WS knob is the calibration test for the whole pipeline:
        mixing must improve monotonically with rewiring probability."""
        slems = []
        for p in (0.0, 0.05, 0.4):
            g = watts_strogatz(200, 6, p, seed=4)
            if is_connected(g):
                slems.append(slem(g, check_connected=False))
        assert len(slems) == 3
        assert slems[0] > slems[1] > slems[2]

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 4, -0.1)

    def test_deterministic(self):
        assert watts_strogatz(50, 4, 0.2, seed=8) == watts_strogatz(50, 4, 0.2, seed=8)
