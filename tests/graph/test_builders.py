"""Unit tests for GraphBuilder and configuration-model wiring."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import Graph, GraphBuilder, graph_from_degree_sequence_stubs


class TestGraphBuilder:
    def test_empty_build(self):
        assert GraphBuilder().build() == Graph.empty(0)

    def test_preallocated_nodes(self):
        assert GraphBuilder(5).build().num_nodes == 5

    def test_add_edge_grows_nodes(self):
        b = GraphBuilder()
        b.add_edge(0, 9)
        assert b.num_nodes == 10

    def test_add_node_allocates_sequential_ids(self):
        b = GraphBuilder(2)
        assert b.add_node() == 2
        assert b.add_node() == 3

    def test_add_nodes_batch(self):
        b = GraphBuilder()
        ids = b.add_nodes(4)
        assert ids.tolist() == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            b.add_nodes(-1)

    def test_dedup_on_build(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.add_edge(1, 0)
        b.add_edge(2, 2)
        assert b.build().num_edges == 1

    def test_add_edges_array_fast_path(self):
        b = GraphBuilder()
        b.add_edges(np.asarray([[0, 1], [1, 2]]))
        assert b.build().num_edges == 2

    def test_add_edges_empty(self):
        b = GraphBuilder(3)
        b.add_edges([])
        assert b.build().num_edges == 0

    def test_negative_ids_rejected(self):
        b = GraphBuilder()
        with pytest.raises(GraphFormatError):
            b.add_edge(-1, 0)
        with pytest.raises(GraphFormatError):
            b.add_edges(np.asarray([[0, -2]]))

    def test_edge_count_upper_bound(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.add_edges([(1, 2), (2, 3)])
        assert b.edge_count_upper_bound() == 3

    def test_many_small_edges_flush(self):
        b = GraphBuilder()
        for i in range(70000):  # crosses the internal flush threshold
            b.add_edge(i % 300, (i * 7 + 1) % 300)
        g = b.build()
        assert g.num_nodes == 300
        assert g.num_edges > 0

    def test_mixed_batches_and_singles(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.add_edges([(1, 2)])
        b.add_edge(2, 3)
        assert b.build().num_edges == 3


class TestConfigurationModel:
    def test_degree_sum_must_be_even(self, rng):
        with pytest.raises(ValueError, match="even"):
            graph_from_degree_sequence_stubs(np.asarray([1, 1, 1]), rng)

    def test_negative_degrees_rejected(self, rng):
        with pytest.raises(ValueError):
            graph_from_degree_sequence_stubs(np.asarray([-1, 1]), rng)

    def test_realised_degrees_bounded_by_requested(self, rng):
        degrees = np.asarray([3, 3, 2, 2, 2])
        g = graph_from_degree_sequence_stubs(degrees, rng)
        assert np.all(g.degrees <= degrees)

    def test_zero_degrees(self, rng):
        g = graph_from_degree_sequence_stubs(np.zeros(4, dtype=np.int64), rng)
        assert g.num_nodes == 4
        assert g.num_edges == 0

    def test_large_sequence_nearly_realised(self, rng):
        # Sparse regime: erased loops/multi-edges are a tiny fraction.
        degrees = np.full(2000, 4, dtype=np.int64)
        g = graph_from_degree_sequence_stubs(degrees, rng)
        assert g.num_edges >= 0.98 * degrees.sum() / 2
