"""Unit tests for connected-component analysis."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    connected_component_labels,
    connected_components,
    induced_subgraph,
    is_connected,
    largest_component_nodes,
    largest_connected_component,
    num_connected_components,
)


class TestLabels:
    def test_single_component(self, cycle5):
        labels = connected_component_labels(cycle5)
        assert np.all(labels == 0)

    def test_multiple_components(self, triangle_plus_isolated):
        labels = connected_component_labels(triangle_plus_isolated)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] != labels[0]
        assert labels[4] != labels[3]

    def test_empty_graph(self):
        assert connected_component_labels(Graph.empty(0)).size == 0


class TestComponents:
    def test_sorted_largest_first(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4)])
        comps = connected_components(g)
        assert len(comps) == 2
        assert comps[0].size == 3
        assert comps[1].size == 2

    def test_count(self, triangle_plus_isolated):
        assert num_connected_components(triangle_plus_isolated) == 3

    def test_empty_count(self):
        assert num_connected_components(Graph.empty(0)) == 0

    def test_is_connected(self, petersen, triangle_plus_isolated):
        assert is_connected(petersen)
        assert not is_connected(triangle_plus_isolated)
        assert not is_connected(Graph.empty(0))

    def test_single_node_is_connected(self):
        assert is_connected(Graph.empty(1))


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self, two_triangles_bridged):
        sub, node_map = induced_subgraph(two_triangles_bridged, [0, 1, 2, 3])
        assert sub.num_nodes == 4
        # Triangle 0-1-2 plus the bridge edge 2-3.
        assert sub.num_edges == 4
        assert node_map.tolist() == [0, 1, 2, 3]

    def test_relabels_compactly(self, two_triangles_bridged):
        sub, node_map = induced_subgraph(two_triangles_bridged, [3, 4, 5])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3
        assert node_map.tolist() == [3, 4, 5]

    def test_deduplicates_input(self, cycle5):
        sub, node_map = induced_subgraph(cycle5, [1, 1, 2])
        assert sub.num_nodes == 2
        assert node_map.tolist() == [1, 2]

    def test_out_of_range(self, cycle5):
        with pytest.raises(IndexError):
            induced_subgraph(cycle5, [99])

    def test_empty_selection(self, cycle5):
        sub, node_map = induced_subgraph(cycle5, np.asarray([], dtype=np.int64))
        assert sub.num_nodes == 0
        assert node_map.size == 0


class TestLargestComponent:
    def test_nodes(self, triangle_plus_isolated):
        assert largest_component_nodes(triangle_plus_isolated).tolist() == [0, 1, 2]

    def test_graph(self, triangle_plus_isolated):
        lcc, node_map = largest_connected_component(triangle_plus_isolated)
        assert lcc.num_nodes == 3
        assert lcc.num_edges == 3
        assert node_map.tolist() == [0, 1, 2]

    def test_connected_graph_unchanged(self, petersen):
        lcc, node_map = largest_connected_component(petersen)
        assert lcc == petersen
        assert node_map.tolist() == list(range(10))
