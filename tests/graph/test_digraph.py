"""Unit tests for the directed-graph substrate."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    DiGraph,
    Graph,
    largest_strongly_connected_component,
    strongly_connected_components,
)


@pytest.fixture
def two_cycles():
    """Two directed 3-cycles joined by a one-way arc (two SCCs)."""
    return DiGraph.from_edges(
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
    )


@pytest.fixture
def directed_cycle4():
    return DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])


class TestConstruction:
    def test_basic(self):
        g = DiGraph.from_edges([(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_arcs == 2
        assert g.has_arc(0, 1)
        assert not g.has_arc(1, 0)

    def test_dedup_and_loops(self):
        g = DiGraph.from_edges([(0, 1), (0, 1), (1, 1)])
        assert g.num_arcs == 1

    def test_num_nodes_extension(self):
        g = DiGraph.from_edges([(0, 1)], num_nodes=5)
        assert g.num_nodes == 5

    def test_num_nodes_too_small(self):
        with pytest.raises(GraphFormatError):
            DiGraph.from_edges([(0, 9)], num_nodes=3)

    def test_negative_rejected(self):
        with pytest.raises(GraphFormatError):
            DiGraph.from_edges([(-1, 0)])

    def test_empty(self):
        g = DiGraph.empty(3)
        assert g.num_nodes == 3
        assert g.num_arcs == 0

    def test_degrees(self, two_cycles):
        assert two_cycles.out_degrees.tolist() == [1, 1, 2, 1, 1, 1]
        assert two_cycles.in_degrees.tolist() == [1, 1, 1, 2, 1, 1]

    def test_predecessors_successors(self, two_cycles):
        assert two_cycles.successors(2).tolist() == [0, 3]
        assert two_cycles.predecessors(3).tolist() == [2, 5]

    def test_arcs_roundtrip(self, two_cycles):
        rebuilt = DiGraph.from_edges(two_cycles.arcs(), num_nodes=6)
        assert rebuilt == two_cycles

    def test_equality_and_repr(self, directed_cycle4):
        same = DiGraph.from_edges([(3, 0), (0, 1), (1, 2), (2, 3)])
        assert same == directed_cycle4
        assert "DiGraph" in repr(directed_cycle4)


class TestConversions:
    def test_to_undirected(self, two_cycles):
        und = two_cycles.to_undirected()
        assert isinstance(und, Graph)
        assert und.num_edges == 7  # every arc unique as undirected edge

    def test_to_undirected_merges_mutual(self):
        g = DiGraph.from_edges([(0, 1), (1, 0), (1, 2)])
        assert g.to_undirected().num_edges == 2

    def test_from_undirected_roundtrip(self, petersen):
        d = DiGraph.from_undirected(petersen)
        assert d.num_arcs == 2 * petersen.num_edges
        assert d.to_undirected() == petersen

    def test_reverse(self, two_cycles):
        rev = two_cycles.reverse()
        for u, v in two_cycles.iter_arcs():
            assert rev.has_arc(v, u)
        assert rev.reverse() == two_cycles


class TestStronglyConnected:
    def test_two_sccs(self, two_cycles):
        comps = strongly_connected_components(two_cycles)
        assert len(comps) == 2
        assert {frozenset(c.tolist()) for c in comps} == {
            frozenset({0, 1, 2}),
            frozenset({3, 4, 5}),
        }

    def test_cycle_is_one_scc(self, directed_cycle4):
        assert len(strongly_connected_components(directed_cycle4)) == 1

    def test_dag_all_singletons(self):
        dag = DiGraph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert len(strongly_connected_components(dag)) == 3

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        rng = np.random.default_rng(5)
        arcs = rng.integers(0, 40, size=(150, 2))
        g = DiGraph.from_edges(arcs, num_nodes=40)
        ours = {frozenset(c.tolist()) for c in strongly_connected_components(g)}
        nxg = nx.DiGraph(list(g.iter_arcs()))
        nxg.add_nodes_from(range(40))
        theirs = {frozenset(c) for c in nx.strongly_connected_components(nxg)}
        assert ours == theirs

    def test_largest_scc_extraction(self, two_cycles):
        sub, node_map = largest_strongly_connected_component(two_cycles)
        assert sub.num_nodes == 3
        assert len(strongly_connected_components(sub)) == 1
        assert node_map.size == 3

    def test_deep_recursion_safe(self):
        """A 5000-node directed cycle must not hit the recursion limit."""
        n = 5000
        arcs = [(i, (i + 1) % n) for i in range(n)]
        g = DiGraph.from_edges(arcs)
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert comps[0].size == n
