"""Unit tests for the CSR Graph core."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import Graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges([(0, 1), (1, 2)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_from_edges_dedups_and_drops_loops(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1), (2, 2)])
        assert g.num_edges == 1
        assert g.num_nodes == 3
        assert not g.has_edge(2, 2)

    def test_from_edges_num_nodes_extends(self):
        g = Graph.from_edges([(0, 1)], num_nodes=10)
        assert g.num_nodes == 10
        assert g.degree(9) == 0

    def test_from_edges_num_nodes_too_small(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges([(0, 5)], num_nodes=3)

    def test_from_edges_negative_id(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges([(-1, 2)])

    def test_from_edges_bad_shape(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges(np.asarray([[1, 2, 3]]))

    def test_empty_graph(self):
        g = Graph.empty(4)
        assert g.num_nodes == 4
        assert g.num_edges == 0
        assert list(g.iter_edges()) == []

    def test_empty_edge_list(self):
        g = Graph.from_edges([])
        assert g.num_nodes == 0
        assert g.num_edges == 0

    def test_from_adjacency(self):
        g = Graph.from_adjacency([[1, 2], [0], [0]])
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_from_adjacency_symmetrises(self):
        # Missing reverse arcs are added.
        g = Graph.from_adjacency([[1], [], []])
        assert g.has_edge(1, 0)
        assert g.num_nodes == 3

    def test_csr_validation_rejects_asymmetric(self):
        indptr = np.asarray([0, 1, 1])
        indices = np.asarray([1])
        with pytest.raises(GraphFormatError):
            Graph(indptr, indices)

    def test_csr_validation_rejects_self_loop(self):
        indptr = np.asarray([0, 1])
        indices = np.asarray([0])
        with pytest.raises(GraphFormatError):
            Graph(indptr, indices)

    def test_csr_validation_rejects_unsorted_rows(self):
        indptr = np.asarray([0, 2, 3, 4])
        indices = np.asarray([2, 1, 0, 0])
        with pytest.raises(GraphFormatError):
            Graph(indptr, indices)


class TestAccessors:
    def test_degrees(self, star6):
        assert star6.degree(0) == 5
        assert star6.degree(3) == 1
        assert star6.degrees.sum() == 2 * star6.num_edges

    def test_neighbors_sorted(self, petersen):
        for v in range(petersen.num_nodes):
            nbrs = petersen.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)

    def test_neighbors_out_of_range(self, path4):
        with pytest.raises(IndexError):
            path4.neighbors(99)

    def test_has_edge(self, path4):
        assert path4.has_edge(0, 1)
        assert path4.has_edge(1, 0)
        assert not path4.has_edge(0, 2)

    def test_edges_canonical_orientation(self, petersen):
        edges = petersen.edges()
        assert edges.shape == (15, 2)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_iter_edges_matches_edges(self, cycle5):
        assert list(cycle5.iter_edges()) == [tuple(e) for e in cycle5.edges()]

    def test_adjacency_matrix(self, cycle5):
        mat = cycle5.adjacency_matrix()
        dense = mat.toarray()
        assert (dense == dense.T).all()
        assert dense.sum() == 2 * cycle5.num_edges
        assert np.all(np.diag(dense) == 0)

    def test_len_and_contains(self, path4):
        assert len(path4) == 4
        assert 3 in path4
        assert 4 not in path4
        assert "x" not in path4

    def test_equality_and_hash(self):
        a = Graph.from_edges([(0, 1), (1, 2)])
        b = Graph.from_edges([(1, 2), (0, 1)])
        c = Graph.from_edges([(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a graph"

    def test_repr(self, cycle5):
        assert repr(cycle5) == "Graph(n=5, m=5)"

    def test_edge_appears_in_both_rows(self, two_triangles_bridged):
        g = two_triangles_bridged
        for u, v in g.iter_edges():
            assert v in g.neighbors(u)
            assert u in g.neighbors(v)
