"""Unit tests for graph I/O (SNAP edge lists + npz cache format)."""

import gzip

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    Graph,
    load_graph,
    load_npz,
    parse_edge_list,
    read_edge_list,
    save_graph,
    save_npz,
    write_edge_list,
)


class TestParseEdgeList:
    def test_basic(self):
        edges = parse_edge_list("0 1\n1 2\n")
        assert edges.tolist() == [[0, 1], [1, 2]]

    def test_comments_and_blanks(self):
        text = "# SNAP header\n% other comment\n\n0\t1\n"
        assert parse_edge_list(text).tolist() == [[0, 1]]

    def test_extra_fields_ignored(self):
        assert parse_edge_list("3 4 1290000000\n").tolist() == [[3, 4]]

    def test_empty(self):
        assert parse_edge_list("# nothing\n").shape == (0, 2)

    def test_non_integer_raises(self):
        with pytest.raises(GraphFormatError, match="non-integer"):
            parse_edge_list("a b\n")

    def test_single_field_raises(self):
        with pytest.raises(GraphFormatError, match="expected two"):
            parse_edge_list("42\n")

    def test_negative_raises(self):
        with pytest.raises(GraphFormatError, match="negative"):
            parse_edge_list("-1 2\n")


class TestRoundTrips:
    def test_edge_list_roundtrip(self, petersen, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(petersen, path)
        assert load_graph(path) == petersen

    def test_gzipped_roundtrip(self, petersen, tmp_path):
        path = tmp_path / "g.txt.gz"
        write_edge_list(petersen, path)
        with gzip.open(path, "rt") as fh:
            assert fh.readline().startswith("#")
        assert load_graph(path) == petersen

    def test_header_lines_written_as_comments(self, path4, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(path4, path, header="source: test\nline two")
        text = path.read_text()
        assert "# source: test" in text
        assert "# line two" in text
        assert load_graph(path) == path4

    def test_npz_roundtrip(self, bridge_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(bridge_graph, path)
        assert load_npz(path) == bridge_graph

    def test_npz_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_save_graph_dispatches_on_extension(self, cycle5, tmp_path):
        npz = tmp_path / "c.npz"
        txt = tmp_path / "c.edges"
        save_graph(cycle5, npz)
        save_graph(cycle5, txt)
        assert load_npz(npz) == cycle5
        assert load_graph(txt) == cycle5

    def test_load_graph_symmetrises(self, tmp_path):
        path = tmp_path / "d.txt"
        path.write_text("0 1\n1 0\n1 2\n")
        g = load_graph(path)
        assert g.num_edges == 2

    def test_load_graph_num_nodes(self, tmp_path):
        path = tmp_path / "d.txt"
        path.write_text("0 1\n")
        assert load_graph(path, num_nodes=7).num_nodes == 7

    def test_isolated_nodes_preserved_by_npz(self, tmp_path):
        g = Graph.from_edges([(0, 1)], num_nodes=5)
        path = tmp_path / "iso.npz"
        save_npz(g, path)
        assert load_npz(path).num_nodes == 5
