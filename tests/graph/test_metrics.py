"""Unit tests for structural metrics; cross-validated against networkx."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    approximate_diameter,
    average_clustering,
    average_degree,
    conductance_of_set,
    cut_size,
    degree_assortativity,
    degree_histogram,
    degree_stats,
    density,
    global_clustering,
    local_clustering,
    volume,
)


class TestDegreeStats:
    def test_star(self, star6):
        stats = degree_stats(star6)
        assert stats.minimum == 1
        assert stats.maximum == 5
        assert stats.mean == pytest.approx(10 / 6)
        assert stats.median == 1.0

    def test_empty(self):
        stats = degree_stats(Graph.empty(0))
        assert stats.maximum == 0

    def test_as_dict(self, cycle5):
        d = degree_stats(cycle5).as_dict()
        assert d["min"] == d["max"] == 2

    def test_histogram(self, star6):
        hist = degree_histogram(star6)
        assert hist[1] == 5
        assert hist[5] == 1

    def test_average_degree(self, cycle5):
        assert average_degree(cycle5) == 2.0
        assert average_degree(Graph.empty(0)) == 0.0

    def test_density(self, complete5):
        assert density(complete5) == pytest.approx(1.0)
        assert density(Graph.empty(1)) == 0.0


class TestClustering:
    def test_triangle(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        assert local_clustering(g).tolist() == [1.0, 1.0, 1.0]
        assert global_clustering(g) == pytest.approx(1.0)

    def test_path_no_triangles(self, path4):
        assert np.all(local_clustering(path4) == 0)
        assert global_clustering(path4) == 0.0

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        from repro.generators import erdos_renyi_gnm
        from repro.graph.nxcompat import to_networkx

        g = erdos_renyi_gnm(80, 400, seed=5)
        ours = average_clustering(g)
        theirs = nx.average_clustering(to_networkx(g))
        assert ours == pytest.approx(theirs, abs=1e-12)

    def test_transitivity_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        from repro.generators import erdos_renyi_gnm
        from repro.graph.nxcompat import to_networkx

        g = erdos_renyi_gnm(80, 400, seed=6)
        assert global_clustering(g) == pytest.approx(
            nx.transitivity(to_networkx(g)), abs=1e-12
        )


class TestAssortativity:
    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        from repro.generators import barabasi_albert
        from repro.graph.nxcompat import to_networkx

        g = barabasi_albert(300, 3, seed=8)
        ours = degree_assortativity(g)
        theirs = nx.degree_assortativity_coefficient(to_networkx(g))
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_no_edges_nan(self):
        assert np.isnan(degree_assortativity(Graph.empty(3)))

    def test_regular_graph_nan(self, cycle5):
        assert np.isnan(degree_assortativity(cycle5))


class TestCuts:
    def test_volume(self, star6):
        assert volume(star6, [0]) == 5
        assert volume(star6, [1, 2]) == 2

    def test_cut_size(self, two_triangles_bridged):
        assert cut_size(two_triangles_bridged, [0, 1, 2]) == 1
        assert cut_size(two_triangles_bridged, [0, 1]) == 2

    def test_conductance(self, two_triangles_bridged):
        phi = conductance_of_set(two_triangles_bridged, [0, 1, 2])
        assert phi == pytest.approx(1 / 7)

    def test_conductance_symmetric_in_complement(self, two_triangles_bridged):
        g = two_triangles_bridged
        a = conductance_of_set(g, [0, 1, 2])
        b = conductance_of_set(g, [3, 4, 5])
        assert a == pytest.approx(b)

    def test_conductance_empty_side_raises(self, cycle5):
        with pytest.raises(ValueError):
            conductance_of_set(cycle5, [0, 1, 2, 3, 4])


class TestDiameter:
    def test_lower_bounds_true_diameter(self, path4):
        assert approximate_diameter(path4, trials=4, seed=1) == 3

    def test_cycle(self, cycle6):
        assert approximate_diameter(cycle6, trials=4, seed=2) == 3

    def test_empty(self):
        assert approximate_diameter(Graph.empty(0)) == 0


class TestGraphSummary:
    def test_fields_consistent(self, petersen):
        from repro.graph import summarize

        summary = summarize(petersen, seed=1)
        assert summary.num_nodes == 10
        assert summary.num_edges == 15
        assert summary.degree.minimum == summary.degree.maximum == 3
        assert summary.approx_diameter == 2

    def test_describe_renders(self, petersen):
        from repro.graph import summarize

        text = summarize(petersen, seed=1).describe()
        assert "nodes:" in text
        assert "10" in text
        assert "diameter" in text

    def test_empty_graph(self):
        from repro.graph import Graph, summarize

        summary = summarize(Graph.empty(0))
        assert summary.num_nodes == 0
        assert summary.approx_diameter == 0
