"""Unit tests for networkx interoperability."""

import pytest

nx = pytest.importorskip("networkx")

from repro.graph import Graph
from repro.graph.nxcompat import from_networkx, to_networkx


class TestToNetworkx:
    def test_roundtrip(self, petersen):
        assert from_networkx(to_networkx(petersen)) == petersen

    def test_isolated_nodes_preserved(self):
        g = Graph.from_edges([(0, 1)], num_nodes=4)
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 1

    def test_structure_matches(self, two_triangles_bridged):
        nxg = to_networkx(two_triangles_bridged)
        assert nx.is_connected(nxg)
        assert nx.number_connected_components(nxg) == 1


class TestFromNetworkx:
    def test_petersen_builtin(self):
        g = from_networkx(nx.petersen_graph())
        assert g.num_nodes == 10
        assert g.num_edges == 15
        assert set(g.degrees.tolist()) == {3}

    def test_directed_symmetrised(self):
        d = nx.DiGraph([(0, 1), (1, 0), (1, 2)])
        g = from_networkx(d)
        assert g.num_edges == 2

    def test_string_labels_compacted(self):
        nxg = nx.Graph([("a", "b"), ("b", "c")])
        g = from_networkx(nxg)
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_multigraph_collapsed(self):
        m = nx.MultiGraph()
        m.add_edge(0, 1)
        m.add_edge(0, 1)
        g = from_networkx(m)
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        nxg = nx.Graph([(0, 0), (0, 1)])
        g = from_networkx(nxg)
        assert g.num_edges == 1
