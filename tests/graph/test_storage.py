"""The on-disk CSR container: round-trips, bit-identity, corruption.

The container's contract (DESIGN.md §5): ``save_csr`` followed by
``open_csr`` yields a graph equal to the original, the fingerprint
recorded in the header is byte-for-byte the in-memory
``graph_fingerprint``, and *every* corruption mode surfaces as
:class:`~repro.errors.GraphFormatError`, never as garbage data.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GraphFormatError
from repro.graph import (
    Graph,
    MemmapGraph,
    load_graph,
    open_csr,
    save_csr,
    save_graph,
    streaming_graph_fingerprint,
)
from repro.graph.storage import CSR_MAGIC
from repro.service import graph_fingerprint


def roundtrip(graph, tmp_path, name="g.csr", **open_kwargs):
    path = tmp_path / name
    save_csr(graph, path)
    return open_csr(path, **open_kwargs)


class TestRoundTrip:
    def test_arrays_and_equality(self, petersen, tmp_path):
        mapped = roundtrip(petersen, tmp_path)
        assert isinstance(mapped, MemmapGraph)
        assert mapped.is_memmap and not petersen.is_memmap
        assert np.array_equal(np.asarray(mapped.indptr), petersen.indptr)
        assert np.array_equal(np.asarray(mapped.indices), petersen.indices)
        assert np.array_equal(np.asarray(mapped.degrees), petersen.degrees)
        assert mapped.num_nodes == petersen.num_nodes
        assert mapped.num_edges == petersen.num_edges

    def test_fingerprint_identity(self, petersen, tmp_path):
        """Header fingerprint == in-memory fingerprint == mapped fingerprint."""
        path = tmp_path / "g.csr"
        recorded = save_csr(petersen, path)
        mapped = open_csr(path, verify=True)
        assert recorded == graph_fingerprint(petersen)
        assert graph_fingerprint(mapped) == recorded

    def test_streaming_fingerprint_matches_sweep_fingerprint(self, petersen):
        assert (
            streaming_graph_fingerprint(petersen.indptr, petersen.indices)
            == graph_fingerprint(petersen)
        )

    def test_save_graph_load_graph_dispatch(self, petersen, tmp_path):
        path = tmp_path / "dispatched.csr"
        save_graph(petersen, path)
        back = load_graph(path)
        assert back.is_memmap
        assert np.array_equal(np.asarray(back.indices), petersen.indices)

    def test_materialize_returns_plain_graph(self, petersen, tmp_path):
        mapped = roundtrip(petersen, tmp_path)
        dense = mapped.materialize()
        assert not dense.is_memmap
        assert dense == petersen


@pytest.mark.parametrize("name", ["wiki_vote", "physics1"])
def test_registry_dataset_roundtrip(name, tmp_path):
    """Container round-trip is bit-exact on real registry stand-ins."""
    from repro.datasets import load_cached

    graph = load_cached(name)
    path = tmp_path / f"{name}.csr"
    recorded = save_csr(graph, path)
    mapped = open_csr(path, verify=True)
    assert np.array_equal(np.asarray(mapped.indices), graph.indices)
    assert np.array_equal(np.asarray(mapped.indptr), graph.indptr)
    assert recorded == graph_fingerprint(graph)


@pytest.mark.slow
def test_registry_dataset_roundtrip_full(tmp_path):
    """Tier 2: the whole default roster round-trips bit-exactly."""
    from repro.datasets import dataset_names, load_cached

    for name in dataset_names():
        graph = load_cached(name)
        path = tmp_path / f"{name}.csr"
        recorded = save_csr(graph, path)
        mapped = open_csr(path, verify=True)
        assert np.array_equal(np.asarray(mapped.indices), graph.indices)
        assert recorded == graph_fingerprint(graph)


class TestCorruption:
    def _saved(self, petersen, tmp_path):
        path = tmp_path / "g.csr"
        save_csr(petersen, path)
        return path

    def test_bad_magic(self, petersen, tmp_path):
        path = self._saved(petersen, tmp_path)
        blob = bytearray(path.read_bytes())
        blob[:4] = b"NOPE"
        path.write_bytes(bytes(blob))
        with pytest.raises(GraphFormatError):
            open_csr(path)

    def test_truncated_file(self, petersen, tmp_path):
        path = self._saved(petersen, tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 16])
        with pytest.raises(GraphFormatError):
            open_csr(path)

    def test_flipped_index_byte_fails_verify(self, petersen, tmp_path):
        path = self._saved(petersen, tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # last byte of the indices array
        path.write_bytes(bytes(blob))
        with pytest.raises(GraphFormatError):
            open_csr(path, verify=True)

    def test_garbage_header_json(self, petersen, tmp_path):
        path = self._saved(petersen, tmp_path)
        blob = bytearray(path.read_bytes())
        # Overwrite the JSON header region (directly after magic+lengths).
        _version, header_len = struct.unpack("<II", blob[8:16])
        blob[16:16 + header_len] = b"x" * header_len
        path.write_bytes(bytes(blob))
        with pytest.raises(GraphFormatError):
            open_csr(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csr"
        path.write_bytes(b"")
        with pytest.raises(GraphFormatError):
            open_csr(path)

    def test_magic_constant_guard(self):
        # The format docs promise this exact magic; renaming it breaks
        # every container already on disk.
        assert CSR_MAGIC == b"REPROCSR"


class TestMemmapOperatorEquivalence:
    def test_transition_operator_matches(self, petersen, tmp_path):
        from repro.core.walks import TransitionOperator

        mapped = roundtrip(petersen, tmp_path)
        op_mem = TransitionOperator(petersen, laziness=0.3)
        op_map = TransitionOperator(mapped, laziness=0.3)
        sources = np.arange(petersen.num_nodes, dtype=np.int64)
        walks = [1, 2, 5, 9]
        assert np.array_equal(
            op_mem.variation_curves(sources, walks),
            op_map.variation_curves(sources, walks),
        )

    def test_spectral_matches(self, er_medium, tmp_path):
        from repro.core import transition_spectrum_extremes

        mapped = roundtrip(er_medium, tmp_path)
        dense = transition_spectrum_extremes(er_medium, method="sparse")
        streamed = transition_spectrum_extremes(mapped, method="sparse")
        assert streamed.slem == pytest.approx(dense.slem, abs=1e-9)


@st.composite
def ragged_csr_graphs(draw):
    """Valid undirected CSR graphs with ragged rows and empty rows."""
    n = draw(st.integers(min_value=1, max_value=16))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=40,
        )
    )
    edges = sorted({(min(u, v), max(u, v)) for u, v in pairs if u != v})
    return Graph.from_edges(edges, num_nodes=n)


@settings(max_examples=40, deadline=None)
@given(graph=ragged_csr_graphs())
def test_roundtrip_property(graph, tmp_path_factory):
    """Any valid graph — empty rows, isolated nodes, the empty graph —
    round-trips through the container bit-exactly."""
    tmp = tmp_path_factory.mktemp("csr")
    path = tmp / "g.csr"
    recorded = save_csr(graph, path)
    mapped = open_csr(path, verify=True)
    assert np.array_equal(np.asarray(mapped.indptr), graph.indptr)
    assert np.array_equal(np.asarray(mapped.indices), graph.indices)
    assert np.array_equal(np.asarray(mapped.degrees), graph.degrees)
    assert recorded == streaming_graph_fingerprint(graph.indptr, graph.indices)
