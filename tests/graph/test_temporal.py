"""Temporal graph layer: delta algebra, journaling, windows, compaction.

The load-bearing contract: every snapshot a :class:`TemporalGraph`
serves is **bit-for-bit identical** to a CSR rebuilt from its edge set
with :meth:`Graph.from_edges` — temporal graphs are views over the
static substrate, never a parallel implementation that could drift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphFormatError
from repro.generators import erdos_renyi_gnm
from repro.graph import (
    DELTALOG_SCHEMA,
    DeltaLog,
    EdgeDelta,
    Graph,
    TemporalGraph,
    apply_delta,
    largest_connected_component,
    undo_delta,
)


def _base_graph(seed=5) -> Graph:
    return largest_connected_component(erdos_renyi_gnm(40, 120, seed=seed))[0]


def _churn(graph: Graph, rng, k_ins=5, k_del=5):
    """Random disjoint insert/delete batches valid against ``graph``."""
    edges = graph.edges()
    del_idx = rng.choice(edges.shape[0], size=min(k_del, edges.shape[0]), replace=False)
    delete = edges[np.sort(del_idx)]
    existing = {tuple(e) for e in edges}
    n = graph.num_nodes
    insert = set()
    while len(insert) < k_ins:
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        e = (min(u, v), max(u, v))
        if e not in existing:
            insert.add(e)
    return np.array(sorted(insert), dtype=np.int64), delete


def _edge_set(graph: Graph) -> set:
    return {tuple(e) for e in graph.edges()}


def _assert_csr_identical(a: Graph, b: Graph):
    assert a.num_nodes == b.num_nodes
    assert a.indptr.tobytes() == b.indptr.tobytes()
    assert a.indices.tobytes() == b.indices.tobytes()


class TestEdgeDelta:
    def test_batches_are_canonicalised(self):
        delta = EdgeDelta(1, insert=[(5, 2), (2, 5), (1, 1), (0, 3)])
        # reversed + duplicate collapse to one row, self-loop dropped
        assert delta.insert.tolist() == [[0, 3], [2, 5]]
        assert delta.delete.shape == (0, 2)
        assert delta.num_changes == 2

    def test_batches_are_read_only(self):
        delta = EdgeDelta(1, insert=[(0, 1)])
        with pytest.raises(ValueError):
            delta.insert[0, 0] = 7

    def test_insert_delete_overlap_rejected(self):
        with pytest.raises(GraphFormatError, match="both insert and delete"):
            EdgeDelta(1, insert=[(0, 1), (2, 3)], delete=[(1, 0)])

    def test_bad_shapes_rejected(self):
        with pytest.raises(GraphFormatError, match="shaped"):
            EdgeDelta(1, insert=[(0, 1, 2)])
        with pytest.raises(GraphFormatError, match="negative"):
            EdgeDelta(1, insert=[(-1, 2)])

    def test_inverted_swaps_batches(self):
        delta = EdgeDelta(3, insert=[(0, 1)], delete=[(2, 3)])
        inv = delta.inverted()
        assert inv.insert.tolist() == [[2, 3]] and inv.delete.tolist() == [[0, 1]]
        assert inv.inverted() == delta

    def test_equality_and_hash(self):
        a = EdgeDelta(1, insert=[(0, 1)])
        b = EdgeDelta(1, insert=[(1, 0)])
        c = EdgeDelta(2, insert=[(0, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestApplyDelta:
    def test_apply_matches_rebuild_bit_for_bit(self):
        """The pinned contract, across a random churn sequence."""
        rng = np.random.default_rng(0)
        graph = _base_graph()
        edges = _edge_set(graph)
        for _ in range(6):
            ins, dele = _churn(graph, rng)
            delta = EdgeDelta(0, insert=ins, delete=dele)
            graph = apply_delta(graph, delta)
            edges = (edges - {tuple(e) for e in dele}) | {tuple(e) for e in ins}
            rebuilt = Graph.from_edges(
                np.array(sorted(edges), dtype=np.int64), num_nodes=graph.num_nodes
            )
            _assert_csr_identical(graph, rebuilt)

    def test_undo_round_trips_exactly(self):
        rng = np.random.default_rng(1)
        graph = _base_graph()
        ins, dele = _churn(graph, rng)
        delta = EdgeDelta(0, insert=ins, delete=dele)
        _assert_csr_identical(undo_delta(apply_delta(graph, delta), delta), graph)

    def test_strict_insert_of_existing_edge_rejected(self):
        graph = _base_graph()
        present = tuple(graph.edges()[0])
        with pytest.raises(GraphFormatError, match="already-present"):
            apply_delta(graph, EdgeDelta(0, insert=[present]))

    def test_strict_delete_of_missing_edge_rejected(self):
        graph = _base_graph()
        missing = next(
            (0, v) for v in range(1, graph.num_nodes)
            if (0, v) not in _edge_set(graph)
        )
        with pytest.raises(GraphFormatError, match="non-existent"):
            apply_delta(graph, EdgeDelta(0, delete=[missing]))

    def test_non_strict_tolerates_redundant_changes(self):
        graph = _base_graph()
        present = tuple(graph.edges()[0])
        same = apply_delta(graph, EdgeDelta(0, insert=[present]), strict=False)
        _assert_csr_identical(same, graph)

    def test_insert_can_grow_node_range(self):
        graph = _base_graph()
        n = graph.num_nodes
        grown = apply_delta(graph, EdgeDelta(0, insert=[(0, n + 2)]))
        assert grown.num_nodes == n + 3
        assert grown.num_edges == graph.num_edges + 1


class TestDeltaLog:
    def _stream(self, seed=2, count=4):
        rng = np.random.default_rng(seed)
        graph = _base_graph()
        log = DeltaLog()
        state = graph
        for i in range(count):
            ins, dele = _churn(state, rng)
            delta = EdgeDelta(10 * (i + 1), insert=ins, delete=dele)
            log.append(delta)
            state = apply_delta(state, delta)
        return graph, log, state

    def test_timestamps_must_strictly_increase(self):
        log = DeltaLog()
        log.append(EdgeDelta(10, insert=[(0, 1)]))
        with pytest.raises(ConfigurationError, match="increasing"):
            log.append(EdgeDelta(10, insert=[(2, 3)]))

    def test_head_chains_over_content(self):
        _, log, _ = self._stream()
        heads = [log.head_at(i) for i in range(len(log) + 1)]
        assert len(set(heads)) == len(heads)  # every prefix is distinct
        assert log.head == heads[-1]
        # identical content -> identical chain
        rebuilt = DeltaLog(list(log))
        assert rebuilt.head == log.head

    def test_replay_matches_iterative_application(self):
        base, log, final = self._stream()
        _assert_csr_identical(log.replay(base), final)
        # deterministic: a second replay is byte-identical
        _assert_csr_identical(log.replay(base), log.replay(base))

    def test_payload_round_trip(self):
        _, log, _ = self._stream()
        payload = log.to_payload()
        assert payload["schema"] == DELTALOG_SCHEMA
        restored = DeltaLog.from_payload(payload)
        assert list(restored) == list(log)
        assert restored.head == log.head

    def test_tampered_payload_rejected(self):
        _, log, _ = self._stream()
        payload = log.to_payload()
        payload["deltas"][0]["insert"][0][0] += 1
        with pytest.raises(ConfigurationError, match="head"):
            DeltaLog.from_payload(payload)

    def test_save_load_round_trip(self, tmp_path):
        base, log, final = self._stream()
        path = tmp_path / "journal.json"
        log.save(path)
        restored = DeltaLog.load(path)
        assert restored.head == log.head
        _assert_csr_identical(restored.replay(base), final)


class TestTemporalGraph:
    def _temporal(self, seed=3, count=5):
        rng = np.random.default_rng(seed)
        base = _base_graph()
        temporal = TemporalGraph(base)
        state = base
        for i in range(count):
            ins, dele = _churn(state, rng)
            temporal.append(EdgeDelta(10 * (i + 1), insert=ins, delete=dele))
            state = apply_delta(state, EdgeDelta(10 * (i + 1), insert=ins, delete=dele))
        return base, temporal

    def test_duck_types_graph_at_head(self):
        base, temporal = self._temporal()
        head = temporal.snapshot()
        assert isinstance(temporal, Graph)
        assert temporal.num_nodes == head.num_nodes
        assert temporal.num_edges == head.num_edges
        assert temporal.indptr.tobytes() == head.indptr.tobytes()
        assert temporal.indices.tobytes() == head.indices.tobytes()
        np.testing.assert_array_equal(temporal.degrees, head.degrees)

    def test_at_replays_prefixes_bit_for_bit(self):
        base, temporal = self._temporal()
        _assert_csr_identical(temporal.at(0), base)
        _assert_csr_identical(temporal.at(9), base)  # before first delta
        state = base
        for i, t in enumerate(temporal.log.timestamps):
            state = apply_delta(state, temporal.log[i])
            _assert_csr_identical(temporal.at(t), state)
            _assert_csr_identical(temporal.at(t + 5), state)

    def test_at_before_base_time_rejected(self):
        _, temporal = self._temporal()
        with pytest.raises(ConfigurationError, match="precedes"):
            temporal.at(-1)

    def test_times_lists_all_boundaries(self):
        _, temporal = self._temporal(count=3)
        assert temporal.times() == (0, 10, 20, 30)

    def test_window_matches_naive_oracle(self):
        base, temporal = self._temporal()
        for t0, t1 in [(0, 50), (10, 30), (25, 45), (30, 30), (50, 50)]:
            arrivals = {tuple(e): 0 for e in base.edges()}
            for i, t in enumerate(temporal.log.timestamps):
                if t > t1:
                    break
                delta = temporal.log[i]
                for e in delta.delete:
                    arrivals.pop(tuple(e), None)
                for e in delta.insert:
                    arrivals[tuple(e)] = t
            keep = sorted(e for e, arr in arrivals.items() if arr >= t0)
            expected = Graph.from_edges(
                np.array(keep, dtype=np.int64), num_nodes=temporal.at(t1).num_nodes
            )
            _assert_csr_identical(temporal.window(t0, t1), expected)

    def test_window_rejects_inverted_range(self):
        _, temporal = self._temporal()
        with pytest.raises(ConfigurationError, match="t0 <= t1"):
            temporal.window(20, 10)

    def test_append_validates_before_admitting(self):
        _, temporal = self._temporal()
        head_version = temporal.version
        num = temporal.num_deltas
        bad = EdgeDelta(1000, insert=[tuple(temporal.snapshot().edges()[0])])
        with pytest.raises(GraphFormatError):
            temporal.append(bad)
        # failed append leaves the journal untouched
        assert temporal.num_deltas == num and temporal.version == head_version
        with pytest.raises(ConfigurationError, match="exceed"):
            temporal.append(EdgeDelta(0, insert=[(0, 1)]))

    def test_version_changes_on_append_and_is_content_derived(self):
        base, temporal = self._temporal()
        v0 = temporal.version
        # reconstruction from the same content agrees
        clone = TemporalGraph(base, log=DeltaLog(list(temporal.log)))
        assert clone.version == v0
        temporal.append(EdgeDelta(1000, insert=_churn(temporal.snapshot(),
                                                      np.random.default_rng(9))[0]))
        assert temporal.version != v0

    def test_changes_between_counts_touched_edges(self):
        _, temporal = self._temporal(count=3)
        total = sum(temporal.log[i].num_changes for i in range(3))
        assert temporal.changes_between(0, 30) == total
        assert temporal.changes_between(10, 10) == 0
        assert temporal.changes_between(0, 10) == temporal.log[0].num_changes

    def test_compact_preserves_retained_states(self):
        _, temporal = self._temporal()
        t_fold = 20
        compacted = temporal.compact(t_fold)
        assert compacted.base_time == t_fold
        assert compacted.num_deltas == temporal.num_deltas - 2
        for t in (20, 25, 30, 40, 50):
            _assert_csr_identical(compacted.at(t), temporal.at(t))
        # folding real history rewrites the version (caches invalidate)
        assert compacted.version != temporal.version

    def test_zero_delta_compaction_keeps_version(self):
        """compact(base_time) is the engine's private-copy idiom."""
        _, temporal = self._temporal()
        copy = temporal.compact(temporal.base_time)
        assert copy.version == temporal.version
        missing = next(
            (0, v) for v in range(1, copy.num_nodes)
            if (0, v) not in _edge_set(copy.snapshot())
        )
        copy.append(EdgeDelta(999, insert=[missing]))
        assert copy.version != temporal.version
        assert temporal.num_deltas == 5  # original journal untouched
