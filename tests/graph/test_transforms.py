"""Unit tests for graph transforms (including Figure 6's trimming)."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    add_edges,
    core_numbers,
    disjoint_union,
    k_core,
    relabel_random,
    remove_edges,
    remove_nodes,
    to_undirected,
    trim_min_degree,
)


class TestToUndirected:
    def test_symmetrises_directed_input(self):
        g = to_undirected(np.asarray([[0, 1], [1, 0], [2, 1]]))
        assert g.num_edges == 2

    def test_num_nodes_override(self):
        g = to_undirected(np.asarray([[0, 1]]), num_nodes=5)
        assert g.num_nodes == 5


class TestRemove:
    def test_remove_nodes(self, two_triangles_bridged):
        g, node_map = remove_nodes(two_triangles_bridged, [2])
        assert g.num_nodes == 5
        assert 2 not in node_map.tolist()
        # Removing the bridge endpoint disconnects the triangles.
        assert g.num_edges == 4  # edge 0-1 plus triangle 3-4-5

    def test_remove_edges(self, cycle5):
        g = remove_edges(cycle5, [(0, 1), (1, 0), (9, 9)] if False else [(0, 1)])
        assert g.num_edges == 4
        assert not g.has_edge(0, 1)

    def test_remove_missing_edge_is_noop(self, cycle5):
        g = remove_edges(cycle5, [(0, 2)])
        assert g.num_edges == 5

    def test_remove_edges_either_orientation(self, cycle5):
        g = remove_edges(cycle5, [(1, 0)])
        assert not g.has_edge(0, 1)


class TestAddEdges:
    def test_adds(self, path4):
        g = add_edges(path4, [(0, 3)])
        assert g.has_edge(0, 3)
        assert g.num_edges == 4

    def test_grows_node_set(self, path4):
        g = add_edges(path4, [(0, 7)])
        assert g.num_nodes == 8

    def test_duplicate_is_noop(self, path4):
        g = add_edges(path4, [(0, 1)])
        assert g.num_edges == 3


class TestCoreNumbers:
    def test_cycle_core_two(self, cycle5):
        assert core_numbers(cycle5).tolist() == [2] * 5

    def test_star_core_one(self, star6):
        assert core_numbers(star6).tolist() == [1] * 6

    def test_complete_graph(self, complete5):
        assert core_numbers(complete5).tolist() == [4] * 5

    def test_triangle_with_tail(self):
        # 0-1-2 triangle, tail 2-3-4.
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        cores = core_numbers(g)
        assert cores.tolist() == [2, 2, 2, 1, 1]

    def test_empty(self):
        assert core_numbers(Graph.empty(0)).size == 0

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        from repro.generators import erdos_renyi_gnm
        from repro.graph.nxcompat import to_networkx

        g = erdos_renyi_gnm(150, 450, seed=3)
        ours = core_numbers(g)
        theirs = nx.core_number(to_networkx(g))
        for v in range(g.num_nodes):
            assert ours[v] == theirs[v]


class TestKCoreAndTrimming:
    def test_k_core_two_drops_tail(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        sub, node_map = k_core(g, 2)
        assert sorted(node_map.tolist()) == [0, 1, 2]
        assert sub.num_edges == 3

    def test_k_core_zero_keeps_all(self, star6):
        sub, node_map = k_core(star6, 0)
        assert sub.num_nodes == 6

    def test_k_core_negative_raises(self, star6):
        with pytest.raises(ValueError):
            k_core(star6, -1)

    def test_trim_is_idempotent(self, bridge_graph):
        t1, _m1 = trim_min_degree(bridge_graph, 3)
        t2, _m2 = trim_min_degree(t1, 3)
        assert t1 == t2

    def test_trim_min_degree_guarantee(self, bridge_graph):
        trimmed, _node_map = trim_min_degree(bridge_graph, 4)
        if trimmed.num_nodes:
            assert trimmed.degrees.min() >= 4

    def test_trim_keeps_largest_component(self):
        # Two triangles NOT bridged: trimming keeps only the larger piece.
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (5, 6), (6, 3)])
        trimmed, node_map = trim_min_degree(g, 2, keep_largest_component=True)
        assert trimmed.num_nodes == 4
        assert set(node_map.tolist()) == {3, 4, 5, 6}

    def test_trim_without_component_filter(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        trimmed, _node_map = trim_min_degree(g, 2, keep_largest_component=False)
        assert trimmed.num_nodes == 6

    def test_trim_node_map_points_to_originals(self, bridge_graph):
        trimmed, node_map = trim_min_degree(bridge_graph, 3)
        assert node_map.size == trimmed.num_nodes
        # Degrees can only grow back in context: original degree >= trimmed.
        for new_id, old_id in enumerate(node_map):
            assert bridge_graph.degree(int(old_id)) >= trimmed.degree(new_id)


class TestRelabelAndUnion:
    def test_relabel_preserves_structure(self, petersen, rng):
        relabelled, perm = relabel_random(petersen, rng)
        assert relabelled.num_edges == petersen.num_edges
        assert sorted(relabelled.degrees.tolist()) == sorted(petersen.degrees.tolist())
        for u, v in petersen.iter_edges():
            assert relabelled.has_edge(int(perm[u]), int(perm[v]))

    def test_disjoint_union(self, cycle5, path4):
        g = disjoint_union(cycle5, path4)
        assert g.num_nodes == 9
        assert g.num_edges == 8
        assert g.has_edge(5, 6)  # path edge, offset by 5
        assert not g.has_edge(4, 5)

    def test_disjoint_union_with_empty(self, cycle5):
        g = disjoint_union(cycle5, Graph.empty(3))
        assert g.num_nodes == 8
        assert g.num_edges == 5
