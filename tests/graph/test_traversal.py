"""Unit tests for BFS/DFS traversal."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    bfs_distances,
    bfs_layers,
    bfs_order,
    bfs_tree,
    dfs_order,
    eccentricity,
)


class TestBfsOrder:
    def test_visits_whole_component(self, petersen):
        order = bfs_order(petersen, 0)
        assert sorted(order.tolist()) == list(range(10))

    def test_starts_at_source(self, path4):
        assert bfs_order(path4, 2)[0] == 2

    def test_limit_truncates(self, petersen):
        order = bfs_order(petersen, 0, limit=4)
        assert order.size == 4
        assert order[0] == 0

    def test_limit_zero(self, path4):
        assert bfs_order(path4, 0, limit=0).size == 0

    def test_does_not_cross_components(self, triangle_plus_isolated):
        order = bfs_order(triangle_plus_isolated, 0)
        assert sorted(order.tolist()) == [0, 1, 2]

    def test_source_out_of_range(self, path4):
        with pytest.raises(IndexError):
            bfs_order(path4, 10)


class TestBfsTree:
    def test_parents_form_tree(self, petersen):
        order, parents = bfs_tree(petersen, 0)
        assert parents[0] == -1
        for v in order[1:]:
            p = parents[v]
            assert p >= 0
            assert petersen.has_edge(int(v), int(p))

    def test_unreached_parent_is_minus_one(self, triangle_plus_isolated):
        _order, parents = bfs_tree(triangle_plus_isolated, 0)
        assert parents[3] == -1
        assert parents[4] == -1


class TestBfsDistances:
    def test_path_distances(self, path4):
        assert bfs_distances(path4, 0).tolist() == [0, 1, 2, 3]

    def test_unreachable_is_minus_one(self, triangle_plus_isolated):
        dist = bfs_distances(triangle_plus_isolated, 0)
        assert dist[3] == -1 and dist[4] == -1

    def test_petersen_diameter_two(self, petersen):
        for v in range(10):
            dist = bfs_distances(petersen, v)
            assert dist.max() == 2

    def test_matches_bfs_tree_depth(self, two_triangles_bridged):
        g = two_triangles_bridged
        dist = bfs_distances(g, 0)
        _order, parents = bfs_tree(g, 0)
        for v in range(g.num_nodes):
            depth, cur = 0, v
            while parents[cur] != -1:
                cur = parents[cur]
                depth += 1
            assert depth == dist[v]


class TestBfsLayers:
    def test_layers_partition_component(self, petersen):
        layers = list(bfs_layers(petersen, 0))
        assert sorted(np.concatenate(layers).tolist()) == list(range(10))
        assert layers[0].tolist() == [0]

    def test_layer_sizes_path(self, path4):
        sizes = [layer.size for layer in bfs_layers(path4, 0)]
        assert sizes == [1, 1, 1, 1]


class TestDfsOrder:
    def test_visits_whole_component(self, petersen):
        order = dfs_order(petersen, 3)
        assert sorted(order.tolist()) == list(range(10))
        assert order[0] == 3

    def test_path_dfs_is_linear(self, path4):
        assert dfs_order(path4, 0).tolist() == [0, 1, 2, 3]

    def test_prefers_smallest_neighbor(self):
        g = Graph.from_edges([(0, 2), (0, 1), (1, 3), (2, 3)])
        order = dfs_order(g, 0)
        assert order[1] == 1  # smaller neighbour first


class TestEccentricity:
    def test_path_endpoint(self, path4):
        assert eccentricity(path4, 0) == 3
        assert eccentricity(path4, 1) == 2

    def test_complete_graph(self, complete5):
        assert eccentricity(complete5, 0) == 1
