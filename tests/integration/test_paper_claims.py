"""Integration tests encoding the paper's qualitative findings.

Each test pins one claim from the paper to the synthetic stand-ins, so a
regression in generators, measurement, or calibration that would change
the *story* fails loudly.
"""

import numpy as np
import pytest

from repro.core import (
    fast_mixing_walk_length,
    measure_mixing,
    mixing_time_lower_bound,
    slem,
)
from repro.datasets import REGISTRY, load_cached
from repro.experiments import FAST
from repro.experiments.admission import admission_curve
from repro.graph import trim_min_degree


@pytest.fixture(scope="module")
def slems():
    wanted = [
        "physics1",
        "physics3",
        "enron",
        "epinion",
        "wiki_vote",
        "facebook",
        "dblp",
        "youtube",
        "livejournal_a",
        "facebook_a",
    ]
    return {name: slem(load_cached(name)) for name in wanted}


class TestHeadlineClaim:
    def test_mixing_much_slower_than_literature_assumed(self, slems):
        """Main finding: T(0.1) on acquaintance graphs is orders of
        magnitude above the 10-15 steps SybilGuard/SybilLimit used."""
        yardstick = fast_mixing_walk_length(1_000_000, constant=1.0)  # ~14
        for name in ("physics1", "physics3", "enron", "epinion", "dblp"):
            bound = mixing_time_lower_bound(slems[name], 0.1)
            assert bound > 5 * yardstick, name

    def test_small_acquaintance_graphs_need_hundreds_of_steps(self, slems):
        """Figure 1: physics/Enron/Epinion need T(0.1) in the hundreds."""
        for name in ("physics1", "physics3", "enron", "epinion"):
            bound = mixing_time_lower_bound(slems[name], 0.1)
            assert 100 <= bound <= 900, (name, bound)

    def test_livejournal_slowest_large_graph(self, slems):
        """Figure 2: LiveJournal needs ~1500-2500 steps at eps=0.1."""
        bound = mixing_time_lower_bound(slems["livejournal_a"], 0.1)
        assert bound > 1000
        for other in ("dblp", "youtube", "facebook_a"):
            assert bound > 3 * mixing_time_lower_bound(slems[other], 0.1)

    def test_trust_model_ordering(self, slems):
        """Acquaintance graphs mix slower than weak-trust OSNs."""
        slow = min(slems[n] for n in ("physics1", "physics3", "enron"))
        fast = max(slems[n] for n in ("wiki_vote", "facebook"))
        assert slow > fast


class TestAverageVsWorstCase:
    def test_majority_of_sources_beat_the_worst_case(self):
        """Section 5: 'the majority of walks ... reach closer to the
        stationary distribution at higher rate than that of the mixing
        time'."""
        graph = load_cached("physics1")
        m = measure_mixing(graph, [100], sources=150, seed=1)
        distances = m.distances[:, 0]
        assert np.median(distances) < distances.max() * 0.7

    def test_average_mixing_better_than_bound(self):
        graph = load_cached("physics1")
        mu = slem(graph)
        from repro.core import epsilon_for_walk_length

        m = measure_mixing(graph, [200], sources=150, seed=2)
        bound_eps = epsilon_for_walk_length(mu, 200)
        assert m.average_case()[0] < bound_eps + 0.35  # avg beats/approaches bound
        assert np.quantile(m.distances[:, 0], 0.25) < bound_eps


class TestTrimmingClaim:
    def test_trimming_improves_mixing_but_shrinks_graph(self):
        """Figure 6: pruning low-degree nodes improves mixing at a huge
        membership cost."""
        graph = load_cached("dblp")
        base = measure_mixing(graph, [100], sources=100, seed=3).average_case()[0]
        trimmed, node_map = trim_min_degree(graph, 4)
        after = measure_mixing(trimmed, [100], sources=100, seed=4).average_case()[0]
        assert after < base
        assert trimmed.num_nodes < 0.6 * graph.num_nodes  # large exclusion


class TestSybilLimitClaim:
    def test_walk_length_for_admission_far_above_ten(self):
        """Figure 8 + Section 5: admitting ~all honest nodes takes walks
        far longer than the 10-15 the SybilLimit paper used."""
        curve = admission_curve("physics1", FAST, max_suspects=150)
        w95 = curve.walk_length_for(0.95)
        assert w95 is not None
        assert w95 >= 40

    def test_fast_osn_needs_much_shorter_walks(self):
        slow = admission_curve("physics1", FAST, max_suspects=150)
        fast = admission_curve("wiki_vote", FAST, max_suspects=150)
        w_slow = slow.walk_length_for(0.9)
        w_fast = fast.walk_length_for(0.9)
        assert w_fast is not None and w_slow is not None
        assert w_fast < w_slow


class TestBfsBiasClaim:
    def test_bfs_samples_mix_faster_than_parent(self):
        """Footnote 3: BFS sampling biases toward faster mixing."""
        from repro.sampling import bfs_sample

        graph = load_cached("dblp")
        parent_mu = slem(graph)
        sample_mus = []
        for seed in range(3):
            sub, _ = bfs_sample(graph, 1200, seed=seed)
            sample_mus.append(slem(sub))
        assert np.mean(sample_mus) < parent_mu


class TestCommunityStructureClaim:
    def test_slow_mixing_graphs_have_low_conductance_cuts(self):
        """Viswanath et al. agreement: slow mixing <=> community structure;
        the sweep cut exposes a far sparser cut on physics1 than on the
        fast-mixing wiki_vote."""
        from repro.community import spectral_sweep_cut

        slow_cut = spectral_sweep_cut(load_cached("physics1"))
        fast_cut = spectral_sweep_cut(load_cached("wiki_vote"))
        assert slow_cut.conductance < fast_cut.conductance / 5
