"""Integration tests: the full measurement pipeline across subpackages."""

import numpy as np
import pytest

from repro.core import (
    estimate_mixing_time,
    measure_mixing,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
    slem,
    transition_spectrum_extremes,
)
from repro.datasets import load_cached
from repro.generators import community_powerlaw, erdos_renyi_gnm
from repro.graph import largest_connected_component, load_graph, write_edge_list
from repro.sampling import bfs_sample


class TestEndToEnd:
    def test_generate_measure_bound_consistency(self):
        """Generator -> LCC -> SLEM -> definition-based measurement must
        satisfy Theorem 2 on both sides."""
        raw, _labels = community_powerlaw(
            800, 2.4, 0.08, target_edges=2500, num_communities=8, seed=17
        )
        graph, _ = largest_connected_component(raw)
        summary = transition_spectrum_extremes(graph)
        eps = 0.1
        lower = mixing_time_lower_bound(summary.slem, eps)
        upper = mixing_time_upper_bound(summary.slem, eps, graph.num_nodes)
        measured = estimate_mixing_time(graph, eps, max_steps=int(upper) + 50)
        assert lower - 1 <= measured.walk_length <= upper + 1

    def test_io_roundtrip_preserves_measurement(self, tmp_path):
        """Serialise a dataset to SNAP format, re-load, measurements agree."""
        graph = load_cached("physics1")
        path = tmp_path / "physics1.txt.gz"
        write_edge_list(graph, path)
        reloaded = load_graph(path)
        assert reloaded == graph
        assert slem(reloaded) == pytest.approx(slem(graph), abs=1e-9)

    def test_bfs_sample_pipeline(self):
        """Sampling a dataset and measuring the sample runs end to end."""
        graph = load_cached("youtube")
        sample, _node_map = bfs_sample(graph, 1200, seed=3)
        m = measure_mixing(sample, [5, 20, 80], sources=40, seed=4)
        assert m.worst_case()[0] > m.worst_case()[-1] * 0.99
        assert 0 < slem(sample) < 1

    def test_networkx_crossvalidation_of_slem(self):
        """Our SLEM must match one computed via networkx's matrix."""
        nx = pytest.importorskip("networkx")
        from repro.graph.nxcompat import to_networkx

        graph, _ = largest_connected_component(erdos_renyi_gnm(300, 1200, seed=5))
        ours = slem(graph)
        nxg = to_networkx(graph)
        import scipy.sparse.linalg as sla
        import scipy.sparse as sp

        adjacency = nx.to_scipy_sparse_array(nxg, format="csr", dtype=float)
        deg = np.asarray(adjacency.sum(axis=1)).ravel()
        inv_sqrt = sp.diags(1.0 / np.sqrt(deg))
        norm = inv_sqrt @ adjacency @ inv_sqrt
        top = sla.eigsh(norm, k=2, which="LA", return_eigenvectors=False)
        bottom = sla.eigsh(norm, k=1, which="SA", return_eigenvectors=False)
        theirs = max(abs(np.sort(top)[0]), abs(bottom[0]))
        assert ours == pytest.approx(theirs, abs=1e-8)

    def test_full_experiment_chain_on_one_dataset(self):
        """Table 1 row -> Figure 1 curve -> sampled check, one dataset."""
        from repro.core import lower_bound_curve

        graph = load_cached("wiki_vote")
        mu = slem(graph)
        curve = lower_bound_curve(mu, points=16)
        eps = 0.1
        bound = curve.length_at(eps)
        measured = estimate_mixing_time(graph, eps, sources=60, seed=6, max_steps=2000)
        # Sampled T(eps) respects the bound (allowing interpolation slack).
        assert measured.walk_length >= bound - 1.0
