"""End-to-end pipeline on a *real* (public domain) social network.

The Zachary karate club (1977) is the canonical two-faction social
graph: 34 members, 78 ties, and a documented real-world split into two
communities around the instructor (node 0) and the president (node 33).
Running the whole measurement stack on it validates the bring-your-own-
data path the README promises, against ground truth that is not of our
own making.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.community import louvain, spectral_sweep_cut
from repro.core import (
    estimate_mixing_time,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
    slem,
    stationary_distribution,
    transition_spectrum_extremes,
)
from repro.graph import (
    is_connected,
    largest_connected_component,
    load_graph,
    summarize,
    trim_min_degree,
)

KARATE_PATH = Path(__file__).parent.parent / "data" / "karate.txt"

#: Zachary's reported factions (instructor's side = Mr. Hi, node 0).
MR_HI_FACTION = {0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 16, 17, 19, 21}


@pytest.fixture(scope="module")
def karate():
    graph = load_graph(KARATE_PATH)
    assert graph.num_nodes == 34
    assert graph.num_edges == 78
    return graph


class TestStructure:
    def test_connected_single_component(self, karate):
        assert is_connected(karate)
        lcc, node_map = largest_connected_component(karate)
        assert lcc == karate

    def test_summary_matches_known_facts(self, karate):
        summary = summarize(karate, seed=1)
        assert summary.degree.maximum == 17  # node 33 (the president)
        assert summary.degree.minimum == 1
        assert summary.approx_diameter == 5
        assert summary.average_clustering > 0.5

    def test_stationary_hubs(self, karate):
        pi = stationary_distribution(karate)
        # The two faction leaders carry the most stationary mass.
        top2 = set(np.argsort(pi)[-2:].tolist())
        assert top2 == {0, 33}


class TestMixing:
    def test_slem_moderate(self, karate):
        # Two loosely-joined factions: clearly not an expander, but small.
        mu = slem(karate, method="dense")
        assert 0.85 < mu < 0.99

    def test_bounds_sandwich_measurement(self, karate):
        summary = transition_spectrum_extremes(karate, method="dense")
        eps = 0.1
        lower = mixing_time_lower_bound(summary.slem, eps)
        upper = mixing_time_upper_bound(summary.slem, eps, karate.num_nodes)
        measured = estimate_mixing_time(karate, eps, max_steps=int(upper) + 50)
        assert lower - 1 <= measured.walk_length <= upper + 1

    def test_mixing_far_exceeds_log_n(self, karate):
        # log2(34) ~ 5; the club needs several times that even at eps=0.1.
        measured = estimate_mixing_time(karate, 0.1, max_steps=2000)
        assert measured.walk_length > 10


class TestCommunities:
    def test_sweep_cut_recovers_factions(self, karate):
        cut = spectral_sweep_cut(karate)
        side = set(cut.side.tolist())
        sides = (side, set(range(34)) - side)
        # One side must be (nearly) Mr. Hi's documented faction.
        best_overlap = max(
            len(s & MR_HI_FACTION) / len(s | MR_HI_FACTION) for s in sides
        )
        assert best_overlap > 0.8

    def test_louvain_separates_leaders(self, karate):
        labels = louvain(karate, seed=3)
        assert labels[0] != labels[33]

    def test_trimming_removes_periphery(self, karate):
        trimmed, node_map = trim_min_degree(karate, 3)
        assert 0 in node_map and 33 in node_map  # leaders stay
        assert trimmed.num_nodes < 34
        # Trimming the periphery speeds mixing here too.
        assert slem(trimmed, method="dense") < slem(karate, method="dense")
