"""Shared fixtures for the observability suite."""

import pytest

from repro.obs import OBS


@pytest.fixture
def obs():
    """The process-wide registry, reset and disabled around each test.

    Restores the pre-test enabled flag afterwards so running the suite
    under ``REPRO_TELEMETRY=1`` (as the CI inertness job does) leaves
    the registry the way that environment expects it.
    """
    was_enabled = OBS.enabled
    OBS.disable()
    OBS.reset()
    yield OBS
    OBS.reset()
    OBS.enabled = was_enabled
