"""The inertness contract: telemetry may not change a single bit.

Every numeric path that got instrumented in this package — operator
block evolution, variation curves, hitting times, the spectral
back-ends, the parallel runtime, experiment runners — is executed twice,
telemetry off then on, and compared with **zero tolerance**
(``np.array_equal`` / exact equality).  CI additionally runs the whole
golden-value suite under ``REPRO_TELEMETRY=1`` so the contract is pinned
against the frozen reference numbers too.
"""

import numpy as np
import pytest

from repro.core import (
    estimate_mixing_time,
    parallel_backend_available,
    transition_spectrum_extremes,
)
from tests.core.test_operators import ALL_KINDS, make_operator

needs_pool = pytest.mark.skipif(
    not parallel_backend_available(),
    reason="fork + shared-memory backend unavailable",
)


def _with_flag(obs, enabled, fn):
    obs.reset()
    obs.enabled = bool(enabled)
    try:
        return fn()
    finally:
        obs.enabled = False
        obs.reset()


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_variation_curves_bit_identical(obs, kind):
    def run():
        op = make_operator(kind)
        sources = np.arange(op.num_states, dtype=np.int64)
        return op.variation_curves(sources, [1, 2, 5, 9], block_size=4)

    off = _with_flag(obs, False, run)
    on = _with_flag(obs, True, run)
    assert np.array_equal(off, on)


@pytest.mark.parametrize("kind", ["plain", "teleport"])
def test_hitting_times_bit_identical(obs, kind):
    def run():
        op = make_operator(kind)
        sources = np.arange(op.num_states, dtype=np.int64)
        result = op.hitting_times(sources, 0.2, max_steps=40, block_size=4)
        return result.times.copy(), result.final_distances.copy()

    off_t, off_d = _with_flag(obs, False, run)
    on_t, on_d = _with_flag(obs, True, run)
    assert np.array_equal(off_t, on_t)
    assert np.array_equal(off_d, on_d)


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_evolve_block_bit_identical(obs, kind):
    def run():
        op = make_operator(kind)
        block = op.point_mass_block(np.arange(min(6, op.num_states), dtype=np.int64))
        return op.evolve_block(block, 7)

    assert np.array_equal(_with_flag(obs, False, run), _with_flag(obs, True, run))


@pytest.mark.parametrize("method", ["sparse", "dense", "power"])
def test_spectral_backends_bit_identical(obs, method, er_medium):
    def run():
        s = transition_spectrum_extremes(er_medium, method=method)
        return (s.lambda2, s.lambda_min, s.slem, s.gap)

    assert _with_flag(obs, False, run) == _with_flag(obs, True, run)


def test_estimate_mixing_time_bit_identical(obs, er_medium):
    def run():
        return estimate_mixing_time(er_medium, 0.1, sources=20, seed=7)

    off = _with_flag(obs, False, run)
    on = _with_flag(obs, True, run)
    for attr in ("times", "final_distances", "sources"):
        off_v = getattr(off, attr, None)
        on_v = getattr(on, attr, None)
        if off_v is not None:
            assert np.array_equal(np.asarray(off_v), np.asarray(on_v)), attr


@needs_pool
@pytest.mark.parametrize("kind", ["plain", "teleport"])
def test_parallel_sweep_bit_identical(obs, kind):
    """Telemetry on must not perturb the pool path either — the timed
    task wrapper unwraps to exactly the bare task results."""

    def run():
        op = make_operator(kind)
        sources = np.arange(op.num_states, dtype=np.int64)
        return op.variation_curves(sources, [1, 3, 6], block_size=4, workers=2)

    off = _with_flag(obs, False, run)
    on = _with_flag(obs, True, run)
    assert np.array_equal(off, on)


def test_serial_equals_parallel_under_telemetry(obs):
    """Cross-check: with telemetry ON, workers=2 still equals workers=1."""
    if not parallel_backend_available():
        pytest.skip("no pool backend")

    def run(workers):
        op = make_operator("plain")
        sources = np.arange(op.num_states, dtype=np.int64)
        return op.variation_curves(sources, [2, 4], block_size=4, workers=workers)

    serial = _with_flag(obs, True, lambda: run(1))
    parallel = _with_flag(obs, True, lambda: run(2))
    assert np.array_equal(serial, parallel)


def test_admission_sweep_bit_identical(obs, bridge_graph):
    """The instrumented route engine + vectorised admission: telemetry
    off/on must produce identical verdicts, tails and counts."""
    from repro.sybil import SybilLimit, SybilLimitParams, no_attack_scenario

    def run():
        scenario = no_attack_scenario(bridge_graph)
        protocol = SybilLimit(
            scenario, SybilLimitParams(route_length=10), seed=23
        )
        outcomes = protocol.admission_sweep(0, [2, 5, 10], seed=3)
        return [
            (o.route_length, o.accepted.copy(), o.intersected.copy())
            for o in outcomes
        ]

    off = _with_flag(obs, False, run)
    on = _with_flag(obs, True, run)
    for (w0, acc0, int0), (w1, acc1, int1) in zip(off, on):
        assert w0 == w1
        assert np.array_equal(acc0, acc1)
        assert np.array_equal(int0, int1)


def test_sybilguard_run_bit_identical(obs, bridge_graph):
    from repro.sybil import SybilGuard, no_attack_scenario

    def run():
        guard = SybilGuard(no_attack_scenario(bridge_graph), 12, seed=31)
        outcome = guard.run(0)
        return outcome.accepted.copy(), outcome.suspects.copy()

    off_a, off_s = _with_flag(obs, False, run)
    on_a, on_s = _with_flag(obs, True, run)
    assert np.array_equal(off_a, on_a)
    assert np.array_equal(off_s, on_s)


def test_route_tails_bit_identical(obs, petersen):
    from repro.sybil import RouteInstances

    def run():
        ri = RouteInstances(petersen, 6, seed=19)
        nodes = np.arange(petersen.num_nodes, dtype=np.int64)
        return ri.tails_at_lengths(nodes, [1, 4, 9], seed=2, block_size=2)

    assert np.array_equal(_with_flag(obs, False, run), _with_flag(obs, True, run))


def test_route_telemetry_actually_recorded(obs, petersen):
    """The enabled arm of the route-engine inertness tests must record
    real metrics, or the comparison above is vacuous."""
    from repro.sybil import RouteInstances

    obs.reset()
    obs.enable()
    ri = RouteInstances(petersen, 4, seed=3)
    ri.tails_at_lengths(np.arange(petersen.num_nodes), [1, 5], seed=1)
    snap = obs.snapshot()
    obs.disable()
    obs.reset()
    assert snap["counters"]["sybil.routes.instances"] == 4
    assert snap["counters"]["sybil.routes.blocks"] >= 1
    assert snap["counters"]["sybil.routes.gathers"] >= 1


def test_telemetry_actually_recorded(obs):
    """Guard against the vacuous pass: the enabled arm must have
    recorded real metrics (otherwise inertness proves nothing)."""
    obs.reset()
    obs.enable()
    op = make_operator("plain")
    sources = np.arange(op.num_states, dtype=np.int64)
    op.variation_curves(sources, [1, 2], block_size=4)
    snap = obs.snapshot()
    obs.disable()
    obs.reset()
    assert snap["counters"]["core.evolution.rows"] > 0
    assert snap["spans"]["recorded"] >= 1


def test_checkpointed_sweep_bit_identical(obs, tmp_path):
    """The runtime's checkpoint write/read cycle is telemetry-inert:
    off and on runs (with separate stores) produce identical curves."""
    from repro.core.runtime import ExecutionPolicy

    def run(ckpt):
        op = make_operator("plain")
        sources = np.arange(op.num_states, dtype=np.int64)
        policy = ExecutionPolicy(checkpoint_dir=str(ckpt))
        first = op.variation_curves(sources, [1, 3, 6], policy=policy)
        resumed = op.variation_curves(sources, [1, 3, 6], policy=policy)
        assert np.array_equal(first, resumed)
        return first

    off = _with_flag(obs, False, lambda: run(tmp_path / "off"))
    on = _with_flag(obs, True, lambda: run(tmp_path / "on"))
    assert np.array_equal(off, on)


def test_runtime_checkpoint_counters_recorded(obs, tmp_path):
    """The enabled arm of the checkpoint inertness test must record the
    new ``runtime.checkpoint.*`` counters — and an un-checkpointed run
    must record none of them (vacuity guard both ways)."""
    from repro.core.runtime import ExecutionPolicy

    op = make_operator("plain")
    sources = np.arange(op.num_states, dtype=np.int64)
    policy = ExecutionPolicy(checkpoint_dir=str(tmp_path / "ckpt"))

    obs.reset()
    obs.enable()
    op.variation_curves(sources, [1, 3], policy=policy)  # writes shards
    op.variation_curves(sources, [1, 3], policy=policy)  # loads them back
    snap = obs.snapshot()
    obs.disable()
    obs.reset()
    counters = snap["counters"]
    assert counters["runtime.checkpoint.saved_shards"] >= 1
    assert counters["runtime.checkpoint.bytes_written"] > 0
    assert counters["runtime.checkpoint.loaded_shards"] >= 1
    assert counters["runtime.checkpoint.loaded_rows"] == sources.size

    obs.reset()
    obs.enable()
    op.variation_curves(sources, [1, 3])  # plain serial, no checkpoints
    plain = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert not any(name.startswith("runtime.") for name in plain)


@pytest.mark.parametrize("backend", ["tiled", "float32"])
def test_backend_sweeps_bit_identical(obs, backend):
    """The SpMM backend seam is telemetry-inert: each backend produces
    the same bits with telemetry off and on."""
    from repro.core.runtime import ExecutionPolicy

    def run():
        op = make_operator("plain")
        sources = np.arange(op.num_states, dtype=np.int64)
        return op.variation_curves(
            sources, [1, 2, 5, 9], policy=ExecutionPolicy(backend=backend)
        )

    off = _with_flag(obs, False, run)
    on = _with_flag(obs, True, run)
    assert np.array_equal(off, on)


def test_backend_counters_recorded(obs, er_medium):
    """Vacuity guard: a backend-driven sweep must record the new
    ``core.backend.*`` counters, and the default numpy path none."""
    from repro.core.runtime import ExecutionPolicy
    from repro.core.walks import TransitionOperator

    # A fresh operator: the zoo's lru-cached instance may already hold a
    # memoised prepared step, which would skip the ``prepares`` counter.
    op = TransitionOperator(er_medium)
    sources = np.arange(min(12, op.num_states), dtype=np.int64)

    obs.reset()
    obs.enable()
    op.variation_curves(sources, [1, 2], policy=ExecutionPolicy(backend="tiled"))
    snap = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert snap["core.backend.prepares"] >= 1
    assert snap["core.backend.steps.tiled"] >= 1
    assert snap["core.backend.rows"] > 0

    obs.reset()
    obs.enable()
    op.variation_curves(sources, [1, 2])  # default numpy kernel: no seam
    plain = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert not any(name.startswith("core.backend.") for name in plain)


def test_thread_execution_bit_identical_and_counted(obs):
    """Threaded fan-out is telemetry-inert, and its enabled arm records
    the ``runtime.thread_*`` counters."""
    from repro.core.runtime import ExecutionPolicy

    def run():
        op = make_operator("plain")
        sources = np.arange(op.num_states, dtype=np.int64)
        policy = ExecutionPolicy(workers=2, execution="threads", block_size=4)
        return op.variation_curves(sources, [1, 3, 6], policy=policy)

    off = _with_flag(obs, False, run)
    on = _with_flag(obs, True, run)
    assert np.array_equal(off, on)

    obs.reset()
    obs.enable()
    run()
    snap = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert snap["runtime.thread_sweeps"] >= 1
    assert snap["runtime.thread_shards"] >= 2


def test_nonbacktracking_bit_identical_and_counted(obs, petersen):
    """NB estimator: telemetry-inert curves, and the construction
    counters record arc counts on the enabled arm."""
    from repro.core.nonbacktracking import non_backtracking_curves

    def run():
        return non_backtracking_curves(petersen, [0, 3, 7], [1, 2, 5])

    off = _with_flag(obs, False, run)
    on = _with_flag(obs, True, run)
    assert np.array_equal(off, on)

    obs.reset()
    obs.enable()
    run()
    snap = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert snap["core.nonbacktracking.built"] == 1
    assert snap["core.nonbacktracking.arcs"] == 2 * petersen.num_edges


def test_attack_scenario_build_bit_identical(obs, bridge_graph):
    """The instrumented attack-scenario builder: telemetry off/on must
    produce the identical combined graph and attack-edge rows."""
    from repro.sybil import build_attack_scenario

    def run():
        scenario = build_attack_scenario(
            bridge_graph, "cluster-bomb", num_sybil=12, num_attack_edges=7, seed=3
        )
        return (
            scenario.graph.indptr.copy(),
            scenario.graph.indices.copy(),
            scenario.attack_edges.copy(),
        )

    off = _with_flag(obs, False, run)
    on = _with_flag(obs, True, run)
    for off_arr, on_arr in zip(off, on):
        assert np.array_equal(off_arr, on_arr)


def test_adversarial_sweep_bit_identical(obs, bridge_graph):
    """The full sweep engine (scenario builds, six-defense cells, the
    sharded runtime) is telemetry-inert on its count grid."""
    from repro.experiments import AdversarialKnobs, adversarial_sweep

    def run():
        result = adversarial_sweep(
            bridge_graph,
            strategies=["random"],
            sybil_sizes=[6],
            attack_budgets=[0, 3],
            defenses=("sybilguard", "sumup", "sybilrank"),
            seed=2,
            knobs=AdversarialKnobs(route_length=4, sybillimit_instances=4,
                                   infer_samples=4, infer_burn_in=2,
                                   infer_steps=1, sumup_c_max=4,
                                   whanau_walk_length=4),
            max_suspects=8,
        )
        return result.counts.copy()

    off = _with_flag(obs, False, run)
    on = _with_flag(obs, True, run)
    assert np.array_equal(off, on)


def test_attack_telemetry_actually_recorded(obs, bridge_graph):
    """Vacuity guard for the two tests above: the enabled arm must record
    the ``sybil.attack.*`` spans and counters — and a zero-budget build
    (which short-circuits to the no-attack baseline) must record none."""
    from repro.experiments import AdversarialKnobs, adversarial_sweep
    from repro.sybil import build_attack_scenario

    obs.reset()
    obs.enable()
    build_attack_scenario(bridge_graph, "random", num_sybil=9, num_attack_edges=5, seed=1)
    adversarial_sweep(
        bridge_graph,
        strategies=["random"],
        sybil_sizes=[6],
        attack_budgets=[2],
        defenses=("sybilrank",),
        seed=2,
        knobs=AdversarialKnobs(route_length=4),
        max_suspects=8,
    )
    snap = obs.snapshot()
    obs.disable()
    obs.reset()
    counters = snap["counters"]
    assert counters["sybil.attack.scenarios"] == 2
    assert counters["sybil.attack.edges"] == 5 + 2
    assert counters["sybil.attack.region_nodes"] == 9 + 6
    assert counters["sybil.attack.cells"] == 1
    assert counters["sybil.attack.suspects_judged"] == 8 + 6
    assert snap["spans"]["recorded"] >= 1

    obs.reset()
    obs.enable()
    build_attack_scenario(bridge_graph, "random", num_sybil=9, num_attack_edges=0, seed=1)
    plain = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert not any(name.startswith("sybil.attack.") for name in plain)


def test_streaming_backend_bit_identical(obs, er_medium, tmp_path):
    """The streaming stripe walk is telemetry-inert on both the
    in-memory and the memory-mapped operator."""
    from repro.core.runtime import ExecutionPolicy
    from repro.core.walks import TransitionOperator
    from repro.graph import open_csr, save_csr

    path = tmp_path / "g.csr"
    save_csr(er_medium, path)
    mapped = open_csr(path)
    sources = np.arange(0, er_medium.num_nodes, 3, dtype=np.int64)
    policy = ExecutionPolicy(backend="streaming", memory_budget=4096)

    for operand in (er_medium, mapped):
        def run():
            op = TransitionOperator(operand)
            return op.variation_curves(sources, [1, 2, 5], policy=policy)

        assert np.array_equal(_with_flag(obs, False, run), _with_flag(obs, True, run))


def test_storage_counters_recorded(obs, er_medium, tmp_path):
    """Vacuity guard: save/open must record the ``graph.storage.*``
    counters, and a purely in-memory sweep must record none."""
    from repro.core.walks import TransitionOperator
    from repro.graph import open_csr, save_csr

    obs.reset()
    obs.enable()
    path = tmp_path / "g.csr"
    save_csr(er_medium, path)
    open_csr(path)
    snap = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert snap["graph.storage.saves"] == 1
    assert snap["graph.storage.bytes_written"] > 0
    assert snap["graph.storage.opens"] == 1
    assert snap["graph.storage.bytes_mapped"] > 0

    obs.reset()
    obs.enable()
    op = TransitionOperator(er_medium)
    op.variation_curves(np.arange(8, dtype=np.int64), [1, 2])
    plain = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert not any(name.startswith("graph.storage.") for name in plain)


def test_streaming_counters_recorded(obs, er_medium, tmp_path):
    """The streaming backend's enabled arm must record stripe traffic."""
    from repro.core.runtime import ExecutionPolicy
    from repro.core.walks import TransitionOperator
    from repro.graph import open_csr, save_csr

    path = tmp_path / "g.csr"
    save_csr(er_medium, path)
    mapped = open_csr(path)

    obs.reset()
    obs.enable()
    op = TransitionOperator(mapped)
    op.variation_curves(
        np.arange(0, er_medium.num_nodes, 4, dtype=np.int64),
        [1, 3],
        policy=ExecutionPolicy(backend="streaming", memory_budget=2048),
    )
    snap = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert snap["core.backend.streaming.stripes"] >= 2
    assert snap["core.backend.streaming.bytes_loaded"] > 0

    obs.reset()
    obs.enable()
    TransitionOperator(er_medium).variation_curves(
        np.arange(8, dtype=np.int64), [1, 2]
    )
    plain = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert not any(name.startswith("core.backend.streaming.") for name in plain)


def test_chunked_build_bit_identical_and_counted(obs, tmp_path):
    """The external-memory generator is telemetry-inert and its enabled
    arm records build/arc counters."""
    from repro.generators.chunked import chunked_community_csr

    def run(tag):
        g = chunked_community_csr(
            tmp_path / f"{tag}.csr", 200, num_communities=4, mu_frac=0.1,
            mean_extra_degree=3.0, seed=5, chunk_nodes=64,
        )
        return np.asarray(g.indptr).copy(), np.asarray(g.indices).copy()

    off_p, off_i = _with_flag(obs, False, lambda: run("off"))
    on_p, on_i = _with_flag(obs, True, lambda: run("on"))
    assert np.array_equal(off_p, on_p)
    assert np.array_equal(off_i, on_i)

    obs.reset()
    obs.enable()
    run("counted")
    snap = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert snap["graph.storage.chunked_builds"] == 1
    assert snap["graph.storage.chunked_arcs"] > 0


def test_streamed_spectral_bit_identical_and_counted(obs, er_medium, tmp_path):
    """The stripe-walking LinearOperator used for mapped graphs is
    telemetry-inert and records its matvec traffic."""
    from repro.graph import open_csr, save_csr

    path = tmp_path / "g.csr"
    save_csr(er_medium, path)
    mapped = open_csr(path)

    def run():
        s = transition_spectrum_extremes(mapped, method="power")
        return (s.lambda2, s.lambda_min, s.slem, s.gap)

    assert _with_flag(obs, False, run) == _with_flag(obs, True, run)

    obs.reset()
    obs.enable()
    run()
    snap = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert snap["spectral.stream.matvecs"] >= 1
    assert snap["spectral.stream.stripes"] >= 1

    obs.reset()
    obs.enable()
    transition_spectrum_extremes(er_medium, method="power")
    plain = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert not any(name.startswith("spectral.stream.") for name in plain)


def _toy_temporal():
    from repro.graph import EdgeDelta, Graph, TemporalGraph

    base = Graph.from_edges(
        np.array([(i, (i + 1) % 12) for i in range(12)] + [(0, 2)], dtype=np.int64)
    )
    temporal = TemporalGraph(base)
    temporal.append(EdgeDelta(10, insert=[(3, 5), (4, 6)]))
    temporal.append(EdgeDelta(20, insert=[(1, 3)], delete=[(3, 5)]))
    return temporal


def test_slem_trend_bit_identical(obs):
    """The incremental trend sweep (windows, warm seam, certificates) is
    telemetry-inert."""
    from repro.core import slem_trend

    def run():
        trend = slem_trend(_toy_temporal())
        return trend.slem.copy(), trend.lambda2.copy(), trend.matvecs.copy()

    off = _with_flag(obs, False, run)
    on = _with_flag(obs, True, run)
    for off_arr, on_arr in zip(off, on):
        assert np.array_equal(off_arr, on_arr)


def test_warm_solver_bit_identical_and_counted(obs, er_medium):
    """The warm spectral path is telemetry-inert, and its enabled arm
    records ``core.incremental.*`` counters (vacuity guard both ways:
    a cold solve records none of them)."""
    from repro.core import warm_spectral_extremes

    assert er_medium.num_nodes > 64  # otherwise the warm path never runs

    def run():
        cold = warm_spectral_extremes(er_medium)
        warm = warm_spectral_extremes(er_medium, cold, changed_edges=0)
        return (cold.slem, warm.slem, warm.lambda2, warm.lambda_min, warm.matvecs)

    assert _with_flag(obs, False, run) == _with_flag(obs, True, run)

    obs.reset()
    obs.enable()
    run()
    snap = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert snap["core.incremental.warm_starts"] == 1
    assert snap["core.incremental.matvecs"] >= 1

    obs.reset()
    obs.enable()
    warm_spectral_extremes(er_medium)  # cold: records cold_starts, no warm
    plain = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert plain["core.incremental.cold_starts"] == 1
    assert "core.incremental.warm_starts" not in plain


def test_temporal_service_counters_recorded(obs):
    """The trend-query path and append_delta record service telemetry."""
    from repro.core import ExecutionPolicy
    from repro.service import OperatorRegistry, QueryEngine, ResultCache

    temporal = _toy_temporal()
    obs.reset()
    obs.enable()
    with QueryEngine(
        registry=OperatorRegistry(
            loader=lambda name: temporal.snapshot(), publish=False
        ),
        cache=ResultCache(),
        policy=ExecutionPolicy(workers=1),
        coalesce_window=0.0,
        temporal_loader=lambda name: temporal,
    ) as engine:
        engine.slem_trend("toy")
        engine.slem_trend("toy")
        engine.append_delta("toy", 30, insert=[(2, 7)])
    snap = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert snap["service.cache.misses"] >= 1
    assert snap["service.cache.hits"] >= 1
    assert snap["service.temporal.appends"] == 1


def test_snap_fetch_counters_recorded(obs, tmp_path):
    """The offline ``file://`` fetch path records download telemetry."""
    import gzip
    import hashlib

    from repro.datasets.snap import fetch_dataset

    payload = gzip.compress(b"0 1\n1 2\n2 0\n")
    src = tmp_path / "payload.gz"
    src.write_bytes(payload)
    digest = hashlib.sha256(payload).hexdigest()

    obs.reset()
    obs.enable()
    fetch_dataset("ca-grqc", tmp_path / "out", url=src.as_uri(), sha256=digest)
    snap = obs.snapshot()["counters"]
    obs.disable()
    obs.reset()
    assert snap["datasets.snap.fetches"] == 1
    assert snap["datasets.snap.bytes_fetched"] == len(payload)
