"""Unit tests for run-manifest assembly, validation and I/O."""

import json

import pytest

from repro.experiments import FAST, ExperimentConfig
from repro.obs import (
    MANIFEST_SCHEMA,
    build_run_manifest,
    environment_fingerprint,
    validate_run_manifest,
    write_run_manifest,
)


class TestEnvironmentFingerprint:
    def test_required_shape(self):
        env = environment_fingerprint()
        for key in ("python", "platform", "machine", "cpu_count", "packages"):
            assert key in env
        assert env["packages"]["numpy"] is not None
        assert env["packages"]["scipy"] is not None

    def test_repro_env_vars_captured(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        monkeypatch.setenv("UNRELATED_VAR", "x")
        env = environment_fingerprint()["env"]
        assert env["REPRO_TELEMETRY"] == "1"
        assert "UNRELATED_VAR" not in env


class TestBuild:
    def test_dataclass_config_round_trips(self, obs):
        manifest = build_run_manifest("fig3", config=FAST, datasets=["physics1"])
        validate_run_manifest(manifest)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["experiment"] == "fig3"
        assert manifest["seed"] == FAST.seed  # defaulted from config
        assert manifest["config"]["mode"] == "fast"
        assert manifest["datasets"] == ["physics1"]
        json.dumps(manifest)  # must already be JSON-clean

    def test_mapping_config_and_explicit_seed(self, obs):
        manifest = build_run_manifest("x", config={"alpha": 0.5}, seed=9)
        assert manifest["seed"] == 9
        assert manifest["config"] == {"alpha": 0.5}

    def test_bad_config_type_raises(self, obs):
        with pytest.raises(TypeError):
            build_run_manifest("x", config=object())

    def test_metrics_snapshot_embedded(self, obs):
        obs.enable()
        obs.add("core.evolution.rows", 12)
        manifest = build_run_manifest("x", config=FAST)
        assert manifest["metrics"]["counters"]["core.evolution.rows"] == 12.0

    def test_telemetry_off_still_auditable(self, obs):
        manifest = build_run_manifest("x", config=FAST)
        validate_run_manifest(manifest)
        assert manifest["metrics"]["enabled"] is False

    def test_extra_payload(self, obs):
        manifest = build_run_manifest("x", config=FAST, extra={"elapsed_seconds": 1.5})
        assert manifest["extra"]["elapsed_seconds"] == 1.5


class TestValidate:
    def test_missing_key_named(self, obs):
        manifest = build_run_manifest("x", config=FAST)
        del manifest["datasets"]
        with pytest.raises(ValueError, match="datasets"):
            validate_run_manifest(manifest)

    def test_unknown_schema_rejected(self, obs):
        manifest = build_run_manifest("x", config=FAST)
        manifest["schema"] = "repro.obs.run-manifest/v999"
        with pytest.raises(ValueError, match="schema"):
            validate_run_manifest(manifest)

    def test_non_mapping_rejected(self):
        with pytest.raises(ValueError):
            validate_run_manifest([])

    def test_broken_metrics_rejected(self, obs):
        manifest = build_run_manifest("x", config=FAST)
        manifest["metrics"] = {"nope": 1}
        with pytest.raises(ValueError, match="metrics"):
            validate_run_manifest(manifest)


class TestWrite:
    def test_write_and_reload(self, obs, tmp_path):
        path = tmp_path / "run" / "fig3.manifest.json"
        written = write_run_manifest(
            path,
            "fig3",
            config=ExperimentConfig(mode="fast", workers=2, telemetry=True),
            datasets=["physics1", "physics2"],
        )
        loaded = validate_run_manifest(json.loads(path.read_text(encoding="utf-8")))
        assert loaded["experiment"] == written["experiment"] == "fig3"
        assert loaded["config"]["workers"] == 2
        assert loaded["config"]["telemetry"] is True
        assert loaded["datasets"] == ["physics1", "physics2"]
