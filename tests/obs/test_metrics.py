"""Unit tests for the metrics registry (counters, gauges, histograms, timers)."""

import json
import threading

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, telemetry_enabled_from_env
from repro.obs.metrics import NULL_CONTEXT


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("rows")
        c.add()
        c.add(41.0)
        assert c.value == 42.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("rows").add(-1.0)

    def test_gauge_last_write_wins(self):
        g = Gauge("backend")
        assert g.value is None
        g.set(1)
        g.set(7.5)
        assert g.value == 7.5
        assert g.updates == 2

    def test_histogram_summary(self):
        h = Histogram("chunk")
        for v in (4.0, 1.0, 7.0):
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 3
        assert d["total"] == 12.0
        assert d["mean"] == 4.0
        assert d["min"] == 1.0 and d["max"] == 7.0 and d["last"] == 7.0

    def test_empty_histogram_mean_is_none(self):
        assert Histogram("x").mean is None


class TestRegistry:
    def test_disabled_one_shots_are_noops(self, obs):
        obs.add("a")
        obs.set_gauge("b", 1.0)
        obs.observe("c", 2.0)
        snap = obs.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {} and snap["histograms"] == {}

    def test_disabled_contexts_are_shared_null(self, obs):
        assert obs.timer("t") is NULL_CONTEXT
        assert obs.span("s") is NULL_CONTEXT
        # The null context accepts the full span surface.
        with obs.span("s") as span:
            span.set(rows=3).event("tick", step=1)

    def test_enabled_records(self, obs):
        obs.enable()
        obs.add("rows", 5)
        obs.add("rows", 2)
        obs.set_gauge("workers", 4)
        obs.observe("shard", 10)
        snap = obs.snapshot()
        assert snap["counters"]["rows"] == 7.0
        assert snap["gauges"]["workers"]["value"] == 4.0
        assert snap["histograms"]["shard"]["count"] == 1

    def test_timer_observes_elapsed(self, obs):
        obs.enable()
        with obs.timer("t"):
            pass
        d = obs.histogram("t").to_dict()
        assert d["count"] == 1
        assert d["last"] >= 0.0

    def test_reset_keeps_enabled_flag(self, obs):
        obs.enable()
        obs.add("x")
        obs.reset()
        assert obs.enabled
        assert obs.snapshot()["counters"] == {}

    def test_get_or_create_is_idempotent(self, obs):
        assert obs.counter("k") is obs.counter("k")
        assert obs.gauge("k") is obs.gauge("k")
        assert obs.histogram("k") is obs.histogram("k")

    def test_concurrent_creation_single_instrument(self):
        registry = MetricsRegistry(enabled=True)
        seen = []

        def grab():
            seen.append(registry.counter("shared"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)

    def test_span_cap_counts_drops(self):
        registry = MetricsRegistry(enabled=True)
        registry.MAX_SPANS = 3
        for _ in range(5):
            with registry.span("s"):
                pass
        snap = registry.snapshot()
        assert snap["spans"]["recorded"] == 3
        assert snap["spans"]["dropped"] == 2


class TestExport:
    def test_write_metrics_schema(self, obs, tmp_path):
        obs.enable()
        obs.add("rows", np.int64(3))  # numpy scalars must serialise
        path = tmp_path / "metrics.json"
        obs.write_metrics(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.obs.metrics/v1"
        assert payload["counters"]["rows"] == 3.0

    def test_write_trace_schema(self, obs, tmp_path):
        obs.enable()
        with obs.span("outer", rows=np.int64(7)):
            pass
        path = tmp_path / "trace.json"
        obs.write_trace(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.obs.trace/v1"
        assert payload["spans"][0]["name"] == "outer"
        assert payload["spans"][0]["attributes"]["rows"] == 7


class TestEnvSwitch:
    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("YES", True), (" on ", True),
        ("0", False), ("", False), ("off", False), ("no", False),
    ])
    def test_truthy_parsing(self, raw, expected):
        assert telemetry_enabled_from_env({"REPRO_TELEMETRY": raw}) is expected

    def test_absent_is_disabled(self):
        assert telemetry_enabled_from_env({}) is False
