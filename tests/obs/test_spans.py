"""Unit tests for nested trace spans."""

import threading

import pytest

from repro.errors import ReproError


class TestNesting:
    def test_parent_child_linkage(self, obs):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == outer.depth + 1
        trace = obs.trace()
        assert [s["name"] for s in trace] == ["inner", "outer"]
        assert trace[0]["parent_id"] == trace[1]["id"]

    def test_siblings_share_parent(self, obs):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        by_name = {s["name"]: s for s in obs.trace()}
        assert by_name["a"]["parent_id"] == outer.span_id
        assert by_name["b"]["parent_id"] == outer.span_id
        assert by_name["a"]["id"] != by_name["b"]["id"]

    def test_current_span_tracks_stack(self, obs):
        obs.enable()
        assert obs.current_span() is None
        with obs.span("outer") as outer:
            assert obs.current_span() is outer
            with obs.span("inner") as inner:
                assert obs.current_span() is inner
            assert obs.current_span() is outer
        assert obs.current_span() is None

    def test_threads_have_independent_stacks(self, obs):
        obs.enable()
        seen = {}

        def worker():
            seen["in_thread"] = obs.current_span()
            with obs.span("threaded"):
                seen["inside"] = obs.current_span().name

        with obs.span("main"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["in_thread"] is None  # main's span is not visible
        assert seen["inside"] == "threaded"
        threaded = [s for s in obs.trace() if s["name"] == "threaded"][0]
        assert threaded["parent_id"] is None


class TestPayload:
    def test_attributes_and_events(self, obs):
        obs.enable()
        with obs.span("sweep", sources=10) as span:
            span.set(chunk_rows=4)
            span.event("tvd_checkpoint", step=5, mean_tvd=0.25)
            span.event("tvd_checkpoint", step=10, mean_tvd=0.12)
        record = obs.trace()[0]
        assert record["attributes"] == {"sources": 10, "chunk_rows": 4}
        steps = [e["step"] for e in record["events"]]
        assert steps == [5, 10]
        assert all(e["offset_s"] >= 0.0 for e in record["events"])

    def test_registry_event_attaches_to_innermost(self, obs):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                obs.event("tick", i=1)
        by_name = {s["name"]: s for s in obs.trace()}
        assert len(by_name["inner"]["events"]) == 1
        assert by_name["outer"]["events"] == []

    def test_event_without_open_span_is_dropped(self, obs):
        obs.enable()
        obs.event("orphan")  # must not raise
        assert obs.trace() == []


class TestErrors:
    def test_exception_marks_status_and_propagates(self, obs):
        obs.enable()
        with pytest.raises(ReproError):
            with obs.span("failing"):
                raise ReproError("boom")
        record = obs.trace()[0]
        assert record["status"] == "error"
        assert record["attributes"]["exception"] == "ReproError"
        assert record["duration_s"] is not None

    def test_stack_clean_after_exception(self, obs):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError
        assert obs.current_span() is None

    def test_duration_recorded(self, obs):
        obs.enable()
        with obs.span("timed"):
            pass
        record = obs.trace()[0]
        assert record["duration_s"] >= 0.0
        assert record["status"] == "ok"
