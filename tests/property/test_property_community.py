"""Property-based tests for community detection and partition quality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.community import label_propagation, louvain, modularity
from repro.graph import Graph

from .test_property_walks import connected_graphs


class TestPartitionInvariants:
    @given(connected_graphs(min_nodes=3, max_nodes=20), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_louvain_labels_valid(self, g, seed):
        labels = louvain(g, seed=seed)
        assert labels.size == g.num_nodes
        assert labels.min() == 0
        assert np.unique(labels).size == labels.max() + 1

    @given(connected_graphs(min_nodes=3, max_nodes=20), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_label_propagation_labels_valid(self, g, seed):
        labels = label_propagation(g, seed=seed)
        assert labels.size == g.num_nodes
        assert labels.min() == 0
        assert np.unique(labels).size == labels.max() + 1

    @given(connected_graphs(min_nodes=3, max_nodes=20), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_modularity_bounds(self, g, seed):
        """Q always lies in [-1/2, 1) for any partition."""
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, max(1, g.num_nodes // 2), size=g.num_nodes)
        q = modularity(g, labels.astype(np.int64))
        assert -0.5 - 1e-9 <= q < 1.0

    @given(connected_graphs(min_nodes=3, max_nodes=20))
    @settings(max_examples=50, deadline=None)
    def test_single_community_zero_modularity(self, g):
        assert modularity(g, np.zeros(g.num_nodes, dtype=np.int64)) == pytest.approx(0.0)

    @given(connected_graphs(min_nodes=4, max_nodes=20), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_louvain_never_below_trivial(self, g, seed):
        """Louvain's partition must score at least the all-in-one baseline."""
        labels = louvain(g, seed=seed)
        assert modularity(g, labels) >= -1e-9
