"""Property-based tests for defense-layer invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import erdos_renyi_gnm
from repro.graph import largest_connected_component
from repro.sybil import (
    attach_sybil_region,
    build_whanau,
    no_attack_scenario,
    random_sybil_region,
    sybilrank,
)


@st.composite
def connected_er(draw):
    n = draw(st.integers(min_value=30, max_value=120))
    m = draw(st.integers(min_value=3 * n, max_value=6 * n))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    graph, _ = largest_connected_component(erdos_renyi_gnm(n, min(m, n * (n - 1) // 2), seed=seed))
    return graph


class TestSybilRankInvariants:
    @given(connected_er(), st.integers(min_value=0, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_trust_conservation(self, graph, iterations):
        scen = no_attack_scenario(graph)
        result = sybilrank(scen, [0], iterations=iterations)
        total = (result.scores * graph.degrees).sum()
        assert total == pytest.approx(graph.num_nodes)
        assert np.all(result.scores >= 0)

    @given(connected_er())
    @settings(max_examples=30, deadline=None)
    def test_ranking_is_permutation(self, graph):
        scen = no_attack_scenario(graph)
        result = sybilrank(scen, [0])
        ranking = result.ranking()
        assert np.array_equal(np.sort(ranking), np.arange(graph.num_nodes))


class TestWhanauInvariants:
    @given(connected_er(), st.integers(min_value=1, max_value=15))
    @settings(max_examples=20, deadline=None)
    def test_table_structure(self, graph, walk_length):
        tables = build_whanau(graph, walk_length, num_fingers=6, num_successors=6, seed=1)
        assert np.unique(tables.keys).size == graph.num_nodes
        # Finger pointers are consistent ragged arrays.
        assert tables.finger_ptr[0] == 0
        assert tables.finger_ptr[-1] == tables.finger_nodes.size
        assert np.all(np.diff(tables.finger_ptr) >= 0)
        assert tables.successor_ptr[-1] == tables.successor_keys.size

    @given(connected_er())
    @settings(max_examples=15, deadline=None)
    def test_lookup_never_crashes_and_is_deterministic(self, graph):
        tables = build_whanau(graph, 5, num_fingers=6, num_successors=6, seed=2)
        rng = np.random.default_rng(3)
        for _ in range(10):
            s = int(rng.integers(graph.num_nodes))
            t = float(tables.keys[int(rng.integers(graph.num_nodes))])
            assert tables.lookup(s, t) == tables.lookup(s, t)


class TestScenarioInvariants:
    @given(
        connected_er(),
        st.integers(min_value=10, max_value=40),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_attach_preserves_regions(self, honest, sybil_size, g_attack, seed):
        sybil = random_sybil_region(sybil_size, seed=seed)
        scen = attach_sybil_region(honest, sybil, g_attack, seed=seed + 1)
        assert scen.num_honest == honest.num_nodes
        assert scen.num_sybil == sybil_size
        assert scen.num_attack_edges == g_attack
        # Honest subgraph is untouched.
        for u, v in honest.iter_edges():
            assert scen.graph.has_edge(u, v)
        # Exactly g crossing edges.
        mask = scen.honest_mask()
        edges = scen.graph.edges()
        assert (mask[edges[:, 0]] != mask[edges[:, 1]]).sum() == g_attack
