"""Property-based tests for the directed-graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    DiGraph,
    largest_strongly_connected_component,
    strongly_connected_components,
)


@st.composite
def digraphs(draw, max_nodes=16):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    k = draw(st.integers(min_value=0, max_value=3 * max_nodes))
    arcs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=k,
            max_size=k,
        )
    )
    return DiGraph.from_edges(arcs, num_nodes=n)


class TestDiGraphInvariants:
    @given(digraphs())
    @settings(max_examples=80, deadline=None)
    def test_degree_sums_match(self, g):
        assert g.out_degrees.sum() == g.in_degrees.sum() == g.num_arcs

    @given(digraphs())
    @settings(max_examples=80, deadline=None)
    def test_arcs_roundtrip(self, g):
        rebuilt = DiGraph.from_edges(g.arcs(), num_nodes=g.num_nodes)
        assert rebuilt == g

    @given(digraphs())
    @settings(max_examples=80, deadline=None)
    def test_reverse_involution(self, g):
        assert g.reverse().reverse() == g

    @given(digraphs())
    @settings(max_examples=80, deadline=None)
    def test_predecessors_successors_consistent(self, g):
        for u, v in g.iter_arcs():
            assert v in g.successors(u)
            assert u in g.predecessors(v)

    @given(digraphs())
    @settings(max_examples=60, deadline=None)
    def test_scc_partition(self, g):
        comps = strongly_connected_components(g)
        all_nodes = np.sort(np.concatenate(comps)) if comps else np.zeros(0, dtype=np.int64)
        assert np.array_equal(all_nodes, np.arange(g.num_nodes))
        # Components are pairwise disjoint by the partition check above;
        # each is strongly connected: taking the largest and re-running
        # must yield a single component.
        if comps and comps[0].size > 1:
            sub, _map = largest_strongly_connected_component(g)
            assert len(strongly_connected_components(sub)) == 1

    @given(digraphs())
    @settings(max_examples=60, deadline=None)
    def test_to_undirected_symmetrises(self, g):
        und = g.to_undirected()
        for u, v in g.iter_arcs():
            assert und.has_edge(u, v)
        # Undirected edge count: unique unordered pairs.
        pairs = {(min(u, v), max(u, v)) for u, v in g.iter_arcs()}
        assert und.num_edges == len(pairs)

    @given(digraphs())
    @settings(max_examples=40, deadline=None)
    def test_scc_matches_networkx(self, g):
        nx = pytest.importorskip("networkx")
        nxg = nx.DiGraph(list(g.iter_arcs()))
        nxg.add_nodes_from(range(g.num_nodes))
        ours = {frozenset(c.tolist()) for c in strongly_connected_components(g)}
        theirs = {frozenset(c) for c in nx.strongly_connected_components(nxg)}
        assert ours == theirs
