"""Property-based tests for distribution distances."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    hellinger_distance,
    kl_divergence,
    separation_distance,
    total_variation_distance,
)


@st.composite
def distributions(draw, size=None):
    n = size or draw(st.integers(min_value=1, max_value=12))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=n,
            max_size=n,
        ).filter(lambda ws: sum(ws) > 1e-9)
    )
    arr = np.asarray(weights, dtype=np.float64)
    return arr / arr.sum()


@st.composite
def distribution_pairs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    return draw(distributions(size=n)), draw(distributions(size=n))


class TestMetricProperties:
    @given(distribution_pairs())
    @settings(max_examples=150, deadline=None)
    def test_tv_is_metric_like(self, pq):
        p, q = pq
        d = total_variation_distance(p, q)
        assert 0.0 <= d <= 1.0 + 1e-12
        assert d == total_variation_distance(q, p)
        assert total_variation_distance(p, p) == 0.0

    @given(distribution_pairs(), distributions())
    @settings(max_examples=100, deadline=None)
    def test_tv_triangle_inequality(self, pq, r):
        p, q = pq
        if r.size != p.size:
            return
        d_pq = total_variation_distance(p, q)
        d_pr = total_variation_distance(p, r)
        d_rq = total_variation_distance(r, q)
        assert d_pq <= d_pr + d_rq + 1e-12

    @given(distribution_pairs())
    @settings(max_examples=150, deadline=None)
    def test_separation_dominates_tv(self, pq):
        p, q = pq
        assert separation_distance(p, q) >= total_variation_distance(p, q) - 1e-12

    @given(distribution_pairs())
    @settings(max_examples=150, deadline=None)
    def test_hellinger_tv_sandwich(self, pq):
        """h^2 <= TV <= sqrt(2) h."""
        p, q = pq
        h = hellinger_distance(p, q)
        tv = total_variation_distance(p, q)
        assert h * h <= tv + 1e-9
        assert tv <= np.sqrt(2.0) * h + 1e-9

    @given(distribution_pairs())
    @settings(max_examples=150, deadline=None)
    def test_kl_nonnegative(self, pq):
        p, q = pq
        assert kl_divergence(p, q) >= -1e-9

    @given(distribution_pairs())
    @settings(max_examples=100, deadline=None)
    def test_pinsker(self, pq):
        p, q = pq
        kl = kl_divergence(p, q)
        if np.isfinite(kl):
            # Float rounding can leave KL at -1e-300 for near-identical
            # inputs; clamp before the square root.
            assert total_variation_distance(p, q) <= np.sqrt(max(kl, 0.0) / 2.0) + 1e-9
