"""Property-based tests for graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generators import (
    erdos_renyi_gnm,
    powerlaw_degree_sequence,
    ring_lattice,
    stochastic_block_model,
    watts_strogatz,
)


class TestGeneratorProperties:
    @given(
        st.integers(min_value=2, max_value=40),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_gnm_exact_edge_count(self, n, data):
        max_edges = n * (n - 1) // 2
        m = data.draw(st.integers(min_value=0, max_value=max_edges))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        g = erdos_renyi_gnm(n, m, seed=seed)
        assert g.num_nodes == n
        assert g.num_edges == m

    @given(
        st.integers(min_value=4, max_value=40),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_watts_strogatz_preserves_edge_count(self, n, seed):
        k = min(4, (n - 1) // 2 * 2)
        if k == 0:
            return
        g = watts_strogatz(n, k, 0.3, seed=seed)
        assert g.num_edges == ring_lattice(n, k).num_edges

    @given(
        st.integers(min_value=10, max_value=300),
        st.floats(min_value=1.5, max_value=3.5),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=80, deadline=None)
    def test_powerlaw_sequence_valid(self, n, gamma, seed):
        deg = powerlaw_degree_sequence(n, gamma, seed=seed)
        assert deg.size == n
        assert deg.min() >= 1
        assert deg.sum() % 2 == 0

    @given(
        st.lists(st.integers(min_value=2, max_value=15), min_size=1, max_size=4),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_sbm_respects_blocks(self, sizes, seed):
        k = len(sizes)
        probs = np.full((k, k), 0.05)
        np.fill_diagonal(probs, 0.5)
        g, labels = stochastic_block_model(sizes, probs, seed=seed)
        assert g.num_nodes == sum(sizes)
        assert np.array_equal(np.bincount(labels, minlength=k), np.asarray(sizes))
