"""Property-based tests (hypothesis) for the graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    Graph,
    connected_component_labels,
    core_numbers,
    induced_subgraph,
    k_core,
    largest_connected_component,
    num_connected_components,
)

MAX_NODES = 24


@st.composite
def edge_lists(draw, max_nodes=MAX_NODES):
    """Random edge lists (possibly with duplicates/loops to exercise dedup)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    k = draw(st.integers(min_value=0, max_value=3 * max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=k,
            max_size=k,
        )
    )
    return n, edges


@st.composite
def graphs(draw, max_nodes=MAX_NODES):
    n, edges = draw(edge_lists(max_nodes))
    return Graph.from_edges(edges, num_nodes=n)


class TestGraphInvariants:
    @given(edge_lists())
    @settings(max_examples=80, deadline=None)
    def test_construction_invariants(self, n_edges):
        n, edges = n_edges
        g = Graph.from_edges(edges, num_nodes=n)
        # Handshake lemma.
        assert g.degrees.sum() == 2 * g.num_edges
        # No loops, symmetric adjacency, sorted rows.
        for v in range(g.num_nodes):
            nbrs = g.neighbors(v)
            assert np.all(nbrs != v)
            assert np.all(np.diff(nbrs) > 0)
            for u in nbrs:
                assert g.has_edge(int(u), v)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_through_edges(self, n_edges):
        n, edges = n_edges
        g = Graph.from_edges(edges, num_nodes=n)
        rebuilt = Graph.from_edges(g.edges(), num_nodes=n)
        assert rebuilt == g

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_component_labels_partition(self, g):
        labels = connected_component_labels(g)
        assert labels.size == g.num_nodes
        if g.num_nodes:
            assert labels.min() >= 0
            # Edges never cross components.
            for u, v in g.iter_edges():
                assert labels[u] == labels[v]

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_lcc_is_largest(self, g):
        if g.num_nodes == 0:
            return
        lcc, node_map = largest_connected_component(g)
        labels = connected_component_labels(g)
        biggest = max(np.bincount(labels)) if labels.size else 0
        assert lcc.num_nodes == biggest
        assert node_map.size == lcc.num_nodes

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_core_number_invariants(self, g):
        cores = core_numbers(g)
        assert np.all(cores <= g.degrees)
        for k in (1, 2, 3):
            sub, node_map = k_core(g, k)
            if sub.num_nodes:
                assert sub.degrees.min() >= k
            # k-core membership must match core numbers.
            assert set(node_map.tolist()) == set(np.flatnonzero(cores >= k).tolist())

    @given(graphs(), st.integers(min_value=0, max_value=MAX_NODES))
    @settings(max_examples=60, deadline=None)
    def test_induced_subgraph_edges_subset(self, g, size):
        if g.num_nodes == 0:
            return
        rng = np.random.default_rng(0)
        nodes = rng.choice(g.num_nodes, size=min(size, g.num_nodes), replace=False)
        sub, node_map = induced_subgraph(g, nodes)
        for u, v in sub.iter_edges():
            assert g.has_edge(int(node_map[u]), int(node_map[v]))
        # Edge count equals edges of g with both endpoints selected.
        mask = np.zeros(g.num_nodes, dtype=bool)
        mask[nodes] = True
        expected = sum(1 for u, v in g.iter_edges() if mask[u] and mask[v])
        assert sub.num_edges == expected

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_components_count_matches_networkx(self, g):
        nx = pytest.importorskip("networkx")
        from repro.graph.nxcompat import to_networkx

        if g.num_nodes == 0:
            return
        assert num_connected_components(g) == nx.number_connected_components(
            to_networkx(g)
        )
