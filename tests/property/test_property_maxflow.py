"""Property-based tests for the Dinic max-flow solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sybil import FlowNetwork


@st.composite
def flow_networks(draw):
    """Random capacitated digraphs with designated source 0, sink n-1."""
    n = draw(st.integers(min_value=2, max_value=12))
    num_arcs = draw(st.integers(min_value=0, max_value=30))
    arcs = []
    for _ in range(num_arcs):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u == v:
            continue
        cap = draw(st.integers(min_value=1, max_value=20))
        arcs.append((u, v, float(cap)))
    return n, arcs


class TestMaxFlowProperties:
    @given(flow_networks())
    @settings(max_examples=120, deadline=None)
    def test_flow_value_equals_min_cut(self, spec):
        n, arcs = spec
        net = FlowNetwork(n)
        for u, v, cap in arcs:
            net.add_edge(u, v, cap)
        flow = net.max_flow(0, n - 1)
        reachable = net.min_cut_reachable(0)
        cut = sum(cap for u, v, cap in arcs if reachable[u] and not reachable[v])
        assert flow == pytest.approx(cut)
        # At termination the sink must be residual-unreachable (otherwise
        # an augmenting path remains and the flow was not maximal).
        assert not reachable[n - 1]

    @given(flow_networks())
    @settings(max_examples=120, deadline=None)
    def test_conservation_and_capacity(self, spec):
        n, arcs = spec
        net = FlowNetwork(n)
        ids = [net.add_edge(u, v, cap) for u, v, cap in arcs]
        flow = net.max_flow(0, n - 1)
        # Capacity constraints.
        net_out = np.zeros(n)
        for arc_id, (u, v, cap) in zip(ids, arcs):
            f = net.flow_on(arc_id)
            assert -1e-9 <= f <= cap + 1e-9
            net_out[u] += f
            net_out[v] -= f
        # Conservation at internal nodes; source emits exactly the flow.
        assert net_out[0] == pytest.approx(flow)
        assert net_out[n - 1] == pytest.approx(-flow)
        for v in range(1, n - 1):
            assert net_out[v] == pytest.approx(0.0)

    @given(flow_networks())
    @settings(max_examples=60, deadline=None)
    def test_flow_bounded_by_trivial_cuts(self, spec):
        n, arcs = spec
        net = FlowNetwork(n)
        for u, v, cap in arcs:
            net.add_edge(u, v, cap)
        flow = net.max_flow(0, n - 1)
        out_cap = sum(cap for u, _v, cap in arcs if u == 0)
        in_cap = sum(cap for _u, v, cap in arcs if v == n - 1)
        assert flow <= min(out_cap, in_cap) + 1e-9
