"""Property-based tests for random-route invariants (SybilGuard/Limit core)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Graph
from repro.sybil import RouteInstances, arc_sources, reverse_slots

from .test_property_walks import connected_graphs


class TestRouteProperties:
    @given(connected_graphs(min_nodes=2, max_nodes=14), st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_next_slot_is_permutation(self, g, seed):
        ri = RouteInstances(g, 2, seed=seed)
        for i in range(2):
            table = ri.single_instance(i)
            assert np.array_equal(np.sort(table), np.arange(table.size))

    @given(connected_graphs(min_nodes=2, max_nodes=14))
    @settings(max_examples=60, deadline=None)
    def test_routes_respect_adjacency(self, g):
        ri = RouteInstances(g, 1, seed=3)
        src = arc_sources(g)
        table = ri.single_instance(0)
        # A route on arc (u -> v) continues from v: next arc's source is v.
        assert np.array_equal(src[table], g.indices)

    @given(connected_graphs(min_nodes=2, max_nodes=14))
    @settings(max_examples=60, deadline=None)
    def test_reverse_slots_bijection(self, g):
        rev = reverse_slots(g)
        assert np.array_equal(np.sort(rev), np.arange(rev.size))
        assert np.array_equal(rev[rev], np.arange(rev.size))

    @given(connected_graphs(min_nodes=2, max_nodes=14), st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_route_advancement_is_injective(self, g, steps):
        """Back-traceability: distinct routes never merge."""
        ri = RouteInstances(g, 1, seed=7)
        slots = np.arange(2 * g.num_edges)
        advanced = ri.advance(slots, steps, 0)
        assert np.unique(advanced).size == slots.size

    @given(connected_graphs(min_nodes=3, max_nodes=14))
    @settings(max_examples=40, deadline=None)
    def test_undirected_ids_partition_arcs(self, g):
        ri = RouteInstances(g, 1, seed=9)
        ids = ri.undirected_edge_ids(np.arange(2 * g.num_edges))
        values, counts = np.unique(ids, return_counts=True)
        assert values.size == g.num_edges
        assert np.all(counts == 2)
