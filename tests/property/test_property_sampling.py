"""Property-based tests for subgraph samplers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SamplingError
from repro.graph import is_connected
from repro.sampling import bfs_sample, random_node_sample, random_walk_sample

from .test_property_walks import connected_graphs


class TestBfsSampleProperties:
    @given(connected_graphs(min_nodes=4, max_nodes=16), st.data())
    @settings(max_examples=50, deadline=None)
    def test_sample_invariants(self, g, data):
        target = data.draw(st.integers(min_value=1, max_value=g.num_nodes))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        sub, node_map = bfs_sample(g, target, seed=seed)
        # LCC filtering can only shrink; map is injective into g.
        assert sub.num_nodes <= target
        assert np.unique(node_map).size == node_map.size
        assert node_map.max() < g.num_nodes
        assert sub.num_nodes == 0 or is_connected(sub)
        # Every sampled edge exists in the parent.
        for u, v in sub.iter_edges():
            assert g.has_edge(int(node_map[u]), int(node_map[v]))

    @given(connected_graphs(min_nodes=4, max_nodes=16), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_full_size_sample_is_whole_graph(self, g, seed):
        sub, node_map = bfs_sample(g, g.num_nodes, seed=seed)
        assert sub.num_nodes == g.num_nodes
        assert sub.num_edges == g.num_edges


class TestWalkSampleProperties:
    @given(connected_graphs(min_nodes=4, max_nodes=16), st.data())
    @settings(max_examples=30, deadline=None)
    def test_walk_sample_invariants(self, g, data):
        target = data.draw(st.integers(min_value=1, max_value=g.num_nodes))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        sub, node_map = random_walk_sample(g, target, seed=seed)
        assert sub.num_nodes <= target
        assert np.unique(node_map).size == node_map.size
        for u, v in sub.iter_edges():
            assert g.has_edge(int(node_map[u]), int(node_map[v]))


class TestNodeSampleProperties:
    @given(connected_graphs(min_nodes=4, max_nodes=16), st.data())
    @settings(max_examples=40, deadline=None)
    def test_node_sample_exact_without_filter(self, g, data):
        target = data.draw(st.integers(min_value=1, max_value=g.num_nodes))
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        sub, node_map = random_node_sample(
            g, target, seed=seed, keep_largest_component=False
        )
        assert sub.num_nodes == target
        assert np.unique(node_map).size == target
