"""Property-based tests for the random-walk core on random graphs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    TransitionOperator,
    is_bipartite,
    stationary_distribution,
    total_variation_distance,
)
from repro.errors import NotConnectedError, NotErgodicError
from repro.graph import Graph, is_connected


@st.composite
def connected_graphs(draw, min_nodes=2, max_nodes=16):
    """Connected simple graphs built from a random spanning tree + extras."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    edges = []
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.append((parent, v))
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=2 * n,
        )
    )
    edges.extend(extra)
    return Graph.from_edges(edges, num_nodes=n)


@st.composite
def arbitrary_graphs(draw, max_nodes=24):
    """Simple graphs with no connectivity guarantee (isolated nodes, many
    components) and a bipartite bias: half the draws constrain edges to
    cross an even/odd split so both branches of the 2-colour test fire."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    bipartite_only = draw(st.booleans())
    raw = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=3 * n,
        )
    )
    if bipartite_only:
        raw = [(u, v) for u, v in raw if (u % 2) != (v % 2)]
    return Graph.from_edges(raw, num_nodes=n)


class TestWalkProperties:
    @given(arbitrary_graphs())
    @settings(max_examples=200, deadline=None)
    def test_vectorised_bipartite_agrees_with_reference(self, g):
        """The frontier-at-a-time layering must agree with the original
        node-at-a-time BFS on every graph, connected or not."""
        from repro.core.walks import _is_bipartite_reference

        assert is_bipartite(g) == _is_bipartite_reference(g)


    @given(connected_graphs())
    @settings(max_examples=80, deadline=None)
    def test_stationarity_under_evolution(self, g):
        pi = stationary_distribution(g)
        op = TransitionOperator(g, laziness=0.0, check_aperiodic=False)
        assert np.allclose(op.step(pi), pi, atol=1e-12)

    @given(connected_graphs())
    @settings(max_examples=80, deadline=None)
    def test_evolution_preserves_simplex(self, g):
        laziness = 0.2 if is_bipartite(g) else 0.0
        op = TransitionOperator(g, laziness=laziness)
        x = op.point_mass(0)
        for _ in range(5):
            x = op.step(x)
            assert x.min() >= -1e-15
            assert x.sum() == pytest.approx(1.0)

    @given(connected_graphs())
    @settings(max_examples=60, deadline=None)
    def test_lazy_walk_converges_monotonically_enough(self, g):
        """Lazy chains have positive spectrum: TVD to pi never increases."""
        op = TransitionOperator(g, laziness=0.5)
        pi = op.stationary()
        x = op.point_mass(0)
        prev = total_variation_distance(x, pi, validate=False)
        for _ in range(10):
            x = op.step(x)
            cur = total_variation_distance(x, pi, validate=False)
            assert cur <= prev + 1e-10
            prev = cur

    @given(connected_graphs())
    @settings(max_examples=60, deadline=None)
    def test_bipartite_detection_consistency(self, g):
        nx = pytest.importorskip("networkx")
        from repro.graph.nxcompat import to_networkx

        assert is_bipartite(g) == nx.is_bipartite(to_networkx(g))

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_ergodicity_enforcement(self, g):
        if is_bipartite(g):
            with pytest.raises(NotErgodicError):
                TransitionOperator(g)
        else:
            TransitionOperator(g)  # must not raise

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_spectral_summary_bounds(self, g):
        if g.num_nodes < 2:
            return
        from repro.core import transition_spectrum_extremes

        summary = transition_spectrum_extremes(g, method="dense")
        assert -1.0 - 1e-9 <= summary.lambda_min <= summary.lambda2 <= 1.0 + 1e-9
        assert 0.0 <= summary.slem <= 1.0
        assert summary.gap == pytest.approx(1.0 - summary.slem)
