"""Unit tests for BFS (snowball) sampling — Figure 7's methodology."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graph import is_connected
from repro.sampling import bfs_sample, multi_scale_bfs_samples


class TestBfsSample:
    def test_exact_size(self, er_medium):
        sub, node_map = bfs_sample(er_medium, 50, seed=1)
        assert sub.num_nodes == 50
        assert node_map.size == 50

    def test_sample_is_connected(self, er_medium):
        sub, _ = bfs_sample(er_medium, 80, seed=2)
        assert is_connected(sub)

    def test_node_map_into_original(self, er_medium):
        sub, node_map = bfs_sample(er_medium, 60, seed=3)
        assert node_map.max() < er_medium.num_nodes
        # Every sampled edge exists in the original graph.
        for u, v in sub.iter_edges():
            assert er_medium.has_edge(int(node_map[u]), int(node_map[v]))

    def test_fixed_source(self, er_medium):
        sub, node_map = bfs_sample(er_medium, 30, source=5, seed=4)
        assert 5 in node_map.tolist()

    def test_full_graph_sample(self, er_medium):
        sub, _ = bfs_sample(er_medium, er_medium.num_nodes, seed=5)
        assert sub.num_nodes == er_medium.num_nodes

    def test_component_too_small_raises(self, triangle_plus_isolated):
        with pytest.raises(SamplingError, match="component too small"):
            bfs_sample(triangle_plus_isolated, 4, source=0, seed=6)

    def test_target_exceeds_graph(self, petersen):
        with pytest.raises(SamplingError):
            bfs_sample(petersen, 11)

    def test_nonpositive_target(self, petersen):
        with pytest.raises(SamplingError):
            bfs_sample(petersen, 0)

    def test_deterministic(self, er_medium):
        a, ma = bfs_sample(er_medium, 40, seed=7)
        b, mb = bfs_sample(er_medium, 40, seed=7)
        assert a == b
        assert np.array_equal(ma, mb)

    def test_bfs_ball_is_local(self, bridge_graph):
        """A small BFS ball must stay inside one community of the bridge
        graph (locality is the source of the fast-mixing bias)."""
        sub, node_map = bfs_sample(bridge_graph, 40, source=0, seed=8)
        assert np.all(node_map < 150)  # community 0 ids


class TestMultiScale:
    def test_nested_prefix_property(self, er_medium):
        samples = multi_scale_bfs_samples(er_medium, [20, 60], seed=1)
        small_nodes = set(samples[20][1].tolist())
        large_nodes = set(samples[60][1].tolist())
        assert small_nodes <= large_nodes

    def test_sizes_respected(self, er_medium):
        samples = multi_scale_bfs_samples(er_medium, [10, 30, 90], seed=2)
        assert sorted(samples) == [10, 30, 90]
        for size, (sub, _map) in samples.items():
            assert sub.num_nodes == size

    def test_non_nested_mode(self, er_medium):
        samples = multi_scale_bfs_samples(er_medium, [15, 45], seed=3, nested=False)
        assert samples[15][0].num_nodes == 15

    def test_empty_sizes(self, er_medium):
        with pytest.raises(SamplingError):
            multi_scale_bfs_samples(er_medium, [])
