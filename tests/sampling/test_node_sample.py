"""Unit tests for uniform node/edge sampling baselines."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.sampling import random_edge_sample, random_node_sample


class TestNodeSample:
    def test_without_component_filter(self, er_medium):
        sub, node_map = random_node_sample(
            er_medium, 100, seed=1, keep_largest_component=False
        )
        assert sub.num_nodes == 100
        assert node_map.size == 100

    def test_component_filter_shrinks(self, er_medium):
        sub, _ = random_node_sample(er_medium, 100, seed=2)
        assert sub.num_nodes <= 100

    def test_uniform_sampling_shatters_sparse_graphs(self):
        """The reason the paper uses BFS: uniform node samples of sparse
        graphs fall apart."""
        from repro.generators import powerlaw_configuration_model
        from repro.graph import largest_connected_component

        g = powerlaw_configuration_model(4000, 2.6, target_edges=8000, seed=3)
        lcc, _ = largest_connected_component(g)
        sub, _ = random_node_sample(lcc, 400, seed=4)
        assert sub.num_nodes < 200  # most of the sample is disconnected

    def test_out_of_range(self, petersen):
        with pytest.raises(SamplingError):
            random_node_sample(petersen, 0)
        with pytest.raises(SamplingError):
            random_node_sample(petersen, 99)

    def test_deterministic(self, er_medium):
        a, ma = random_node_sample(er_medium, 50, seed=5)
        b, mb = random_node_sample(er_medium, 50, seed=5)
        assert a == b and np.array_equal(ma, mb)


class TestEdgeSample:
    def test_edge_count(self, er_medium):
        sub, _ = random_edge_sample(er_medium, 200, seed=1, keep_largest_component=False)
        assert sub.num_edges == 200

    def test_edges_exist_in_original(self, er_medium):
        sub, node_map = random_edge_sample(er_medium, 100, seed=2, keep_largest_component=False)
        for u, v in sub.iter_edges():
            assert er_medium.has_edge(int(node_map[u]), int(node_map[v]))

    def test_component_filter(self, er_medium):
        sub, node_map = random_edge_sample(er_medium, 150, seed=3)
        from repro.graph import is_connected

        assert is_connected(sub)
        assert node_map.size == sub.num_nodes

    def test_out_of_range(self, petersen):
        with pytest.raises(SamplingError):
            random_edge_sample(petersen, 0)
        with pytest.raises(SamplingError):
            random_edge_sample(petersen, 16)
