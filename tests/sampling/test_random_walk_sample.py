"""Unit tests for random-walk and MHRW sampling."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graph import is_connected
from repro.sampling import metropolis_hastings_sample, random_walk_sample


class TestRandomWalkSample:
    def test_target_size(self, er_medium):
        sub, node_map = random_walk_sample(er_medium, 60, seed=1)
        assert sub.num_nodes <= 60
        assert sub.num_nodes >= 55  # LCC of a crawled set is nearly all of it

    def test_connected_output(self, er_medium):
        sub, _ = random_walk_sample(er_medium, 50, seed=2)
        assert is_connected(sub)

    def test_edges_exist_in_original(self, er_medium):
        sub, node_map = random_walk_sample(er_medium, 40, seed=3)
        for u, v in sub.iter_edges():
            assert er_medium.has_edge(int(node_map[u]), int(node_map[v]))

    def test_isolated_source_raises(self, triangle_plus_isolated):
        with pytest.raises(SamplingError):
            random_walk_sample(triangle_plus_isolated, 2, source=3, seed=4)

    def test_component_budget_exhaustion(self, triangle_plus_isolated):
        with pytest.raises(SamplingError):
            random_walk_sample(triangle_plus_isolated, 4, source=0, seed=5)

    def test_invalid_target(self, petersen):
        with pytest.raises(SamplingError):
            random_walk_sample(petersen, 0)
        with pytest.raises(SamplingError):
            random_walk_sample(petersen, 11)


class TestMetropolisHastings:
    def test_target_size(self, er_medium):
        sub, _ = metropolis_hastings_sample(er_medium, 60, seed=1)
        assert 55 <= sub.num_nodes <= 60

    def test_degree_bias_correction(self):
        """On a hub-heavy graph, plain RW over-samples high degrees;
        MHRW's visited set leans lower-degree."""
        from repro.generators import barabasi_albert

        g = barabasi_albert(3000, 3, seed=7)
        rw_degrees, mh_degrees = [], []
        for seed in range(5):
            _sub, rw_map = random_walk_sample(g, 300, seed=seed)
            _sub2, mh_map = metropolis_hastings_sample(g, 300, seed=seed)
            rw_degrees.append(g.degrees[rw_map].mean())
            mh_degrees.append(g.degrees[mh_map].mean())
        assert np.mean(mh_degrees) < np.mean(rw_degrees)

    def test_deterministic(self, er_medium):
        a, ma = metropolis_hastings_sample(er_medium, 30, seed=9)
        b, mb = metropolis_hastings_sample(er_medium, 30, seed=9)
        assert a == b and np.array_equal(ma, mb)
