"""Fixtures for the service-layer suite: tiny named graphs + engines.

The registry takes any ``name -> Graph`` loader, so these tests serve
ad-hoc generated graphs under short names instead of going through the
dataset registry — faster, and it lets tests count loader calls to prove
warm reuse.
"""

from __future__ import annotations

import pytest

from repro.generators import erdos_renyi_gnm, two_community_bridge
from repro.graph import largest_connected_component
from repro.service import OperatorRegistry, QueryEngine, ResultCache


def _lcc(graph):
    return largest_connected_component(graph)[0]


def _graphs():
    return {
        "era": _lcc(erdos_renyi_gnm(60, 180, seed=11)),
        "erb": _lcc(erdos_renyi_gnm(50, 140, seed=12)),
        "erc": _lcc(erdos_renyi_gnm(40, 110, seed=13)),
        "bridge": two_community_bridge(25, 6, 2, seed=14)[0],
    }


@pytest.fixture(scope="module")
def graphs():
    return _graphs()


@pytest.fixture
def loader(graphs):
    calls = []

    def load(name):
        calls.append(name)
        return graphs[name]

    load.calls = calls
    return load


@pytest.fixture
def registry(loader):
    with OperatorRegistry(capacity=3, loader=loader) as reg:
        yield reg


@pytest.fixture
def engine(loader):
    with QueryEngine(
        OperatorRegistry(capacity=3, loader=loader),
        ResultCache(max_entries=64),
        coalesce_window=0.02,
    ) as eng:
        yield eng


@pytest.fixture
def cold_engine(loader):
    """No cache, no coalescing: every submit is a fresh direct sweep."""
    with QueryEngine(
        OperatorRegistry(capacity=3, loader=loader),
        ResultCache(max_entries=0),
        coalesce_window=0.0,
    ) as eng:
        yield eng
