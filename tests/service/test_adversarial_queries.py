"""Adversarial admission queries through the service layer.

``AdmissionQuery`` grew attacker parameters in the adversarial-suite PR.
This suite pins the compatibility contract around that extension:

* no-attack queries keep their historical response shape *and* cache
  fingerprint (pre-existing cache entries stay valid);
* attack queries key separately, answer with an ``attack`` sub-dict
  whose counts agree with a direct
  :func:`repro.sybil.attacks.build_attack_scenario` +
  :class:`~repro.sybil.sybillimit.SybilLimit` computation;
* invalid attacker parameters are rejected at query construction, and
  the wire codec round-trips the new fields.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.client import build_query
from repro.service.engine import AdmissionQuery
from repro.sybil import SybilLimit, SybilLimitParams, build_attack_scenario

LEGACY_KEYS = {
    "verifier",
    "suspects",
    "accepted",
    "intersected",
    "route_length",
    "num_instances",
    "admission_rate",
}

ATTACK_KWARGS = dict(
    attack_strategy="random", num_sybil=6, num_attack_edges=3, attack_seed=1
)


class TestResponseShape:
    def test_no_attack_keeps_legacy_shape(self, cold_engine):
        reply = cold_engine.admission("era", [1, 2, 5], 4, seed=3)
        assert set(reply.value) == LEGACY_KEYS

    def test_attack_reply_carries_attack_subdict(self, cold_engine, graphs):
        n = graphs["era"].num_nodes
        suspects = [1, 2, n, n + 1]
        reply = cold_engine.admission(
            "era", suspects, 4, seed=3, num_instances=4, **ATTACK_KWARGS
        )
        assert set(reply.value) == LEGACY_KEYS | {"attack"}
        attack = reply.value["attack"]
        assert attack["strategy"] == "random"
        assert attack["num_sybil"] == 6
        assert attack["num_attack_edges"] == 3
        assert attack["honest_total"] == 2
        assert attack["sybil_total"] == 2
        assert attack["honest_accepted"] + attack["sybil_accepted"] == sum(
            reply.value["accepted"]
        )
        assert len(reply.value["accepted"]) == len(suspects)

    def test_attack_reply_matches_direct_computation(self, cold_engine, graphs):
        n = graphs["era"].num_nodes
        suspects = [1, 2, n, n + 2]
        reply = cold_engine.admission(
            "era", suspects, 4, seed=7, num_instances=4, **ATTACK_KWARGS
        )
        scenario = build_attack_scenario(
            graphs["era"], "random", num_sybil=6, num_attack_edges=3, seed=1
        )
        params = SybilLimitParams(route_length=4, num_instances=4)
        protocol = SybilLimit(scenario, params, seed=7)
        outcome = protocol.admission_sweep(0, [4], suspects=suspects, seed=7)[0]
        assert reply.value["accepted"] == [bool(a) for a in outcome.accepted]
        assert reply.value["admission_rate"] == float(outcome.admission_rate)

    def test_zero_budget_attack_is_no_attack_semantics(self, cold_engine):
        """strategy set but g=0: same verdicts as the plain query (the
        scenario reduces to the no-attack baseline), plus the sub-dict."""
        plain = cold_engine.admission("erb", [1, 2, 5], 4, seed=3, num_instances=4)
        attacked = cold_engine.admission(
            "erb", [1, 2, 5], 4, seed=3, num_instances=4,
            attack_strategy="random",
        )
        assert attacked.value["accepted"] == plain.value["accepted"]
        assert attacked.value["attack"]["num_sybil"] == 0
        assert attacked.value["attack"]["sybil_total"] == 0


class TestFingerprints:
    def test_no_attack_fingerprint_is_historical(self):
        """Default attacker fields must not perturb pre-extension keys:
        a query built with and without the new defaults keys the same."""
        old_style = AdmissionQuery("era", (1, 2), 4, seed=3)
        explicit = AdmissionQuery(
            "era", (1, 2), 4, seed=3,
            attack_strategy=None, num_sybil=0, num_attack_edges=0, attack_seed=0,
        )
        assert old_style.fingerprint("gk") == explicit.fingerprint("gk")

    def test_attack_fingerprint_differs_from_no_attack(self):
        plain = AdmissionQuery("era", (1, 2), 4, seed=3)
        attacked = AdmissionQuery("era", (1, 2), 4, seed=3, **ATTACK_KWARGS)
        assert plain.fingerprint("gk") != attacked.fingerprint("gk")

    def test_every_attack_field_is_keyed(self):
        base = AdmissionQuery("era", (1, 2), 4, seed=3, **ATTACK_KWARGS)
        variants = [
            AdmissionQuery("era", (1, 2), 4, seed=3, attack_strategy="targeted",
                           num_sybil=6, num_attack_edges=3, attack_seed=1),
            AdmissionQuery("era", (1, 2), 4, seed=3, attack_strategy="random",
                           num_sybil=7, num_attack_edges=3, attack_seed=1),
            AdmissionQuery("era", (1, 2), 4, seed=3, attack_strategy="random",
                           num_sybil=6, num_attack_edges=4, attack_seed=1),
            AdmissionQuery("era", (1, 2), 4, seed=3, attack_strategy="random",
                           num_sybil=6, num_attack_edges=3, attack_seed=2),
        ]
        prints = {q.fingerprint("gk") for q in variants}
        assert base.fingerprint("gk") not in prints
        assert len(prints) == len(variants)

    def test_attack_result_served_from_cache_on_repeat(self, engine, graphs):
        n = graphs["era"].num_nodes
        first = engine.admission(
            "era", [1, n], 4, seed=3, num_instances=4, **ATTACK_KWARGS
        )
        second = engine.admission(
            "era", [1, n], 4, seed=3, num_instances=4, **ATTACK_KWARGS
        )
        assert not first.cache_hit
        assert second.cache_hit
        assert second.value == first.value


class TestValidation:
    def test_sybil_fields_require_strategy(self):
        with pytest.raises(ConfigurationError, match="need attack_strategy"):
            AdmissionQuery("era", (1,), 4, num_sybil=5)
        with pytest.raises(ConfigurationError, match="need attack_strategy"):
            AdmissionQuery("era", (1,), 4, num_attack_edges=2)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown attack strategy"):
            AdmissionQuery("era", (1,), 4, attack_strategy="bogus")

    def test_attack_needs_region_of_two(self):
        with pytest.raises(ConfigurationError, match="at least 2"):
            AdmissionQuery(
                "era", (1,), 4,
                attack_strategy="random", num_sybil=1, num_attack_edges=2,
            )

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="nonnegative"):
            AdmissionQuery(
                "era", (1,), 4,
                attack_strategy="random", num_sybil=4, num_attack_edges=-1,
            )


class TestWireCodec:
    def test_build_query_round_trips_attack_fields(self):
        payload = {
            "type": "admission",
            "dataset": "era",
            "suspects": [1, 2, 9],
            "route_length": 4,
            "seed": 3,
            "attack_strategy": "cluster-bomb",
            "num_sybil": 8,
            "num_attack_edges": 5,
            "attack_seed": 11,
        }
        query = build_query(payload)
        assert isinstance(query, AdmissionQuery)
        assert query.suspects == (1, 2, 9)
        assert query.attack_strategy == "cluster-bomb"
        assert query.num_sybil == 8
        assert query.num_attack_edges == 5
        assert query.attack_seed == 11

    def test_local_client_serves_attack_query(self, engine, graphs):
        from repro.service.client import ServiceClient

        client = ServiceClient(engine)
        n = graphs["erc"].num_nodes
        reply = client.admission(
            "erc", [1, n], 4, seed=3, num_instances=4, **ATTACK_KWARGS
        )
        attack = reply.value["attack"]
        assert attack["honest_total"] == 1
        assert attack["sybil_total"] == 1
        assert all(isinstance(a, bool) for a in reply.value["accepted"])
        assert isinstance(attack["sybil_accepted"], int)
        assert not isinstance(attack["sybil_accepted"], np.integer)
