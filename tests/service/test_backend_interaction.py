"""Backend seam × serving layer: cache identity and key discipline.

Pinned design choices under test:

* **Float64 backends share cache entries.**  The fingerprint covers
  content, never execution — and every float64 backend is bit-identical
  to the numpy oracle, so an answer computed under ``tiled`` *is* the
  numpy answer and may be served from the same key.
* **Float32 keys separately.**  A reduced-precision backend genuinely
  changes the numbers; the engine suffixes the finished key with
  ``:float32`` so those answers can never be served to (or poisoned by)
  a float64 client.
* **Serving regime neutrality holds per backend** — coalesced ==
  direct == serial under each backend, same as the PR-6 identity suite.
* **Mode vocabulary** — ``uniform_start`` / ``non_backtracking``
  queries key by mode, and uniform-start requests share one cache entry
  regardless of the requested source.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FLOAT32_CURVE_ATOL,
    ExecutionPolicy,
    TransitionOperator,
    available_backends,
    backend_numeric,
    measure_mixing,
    non_backtracking_hitting_times,
)
from repro.errors import ConfigurationError
from repro.service import OperatorRegistry, QueryEngine, ResultCache
from repro.service.batch import hitting_times_via_service
from repro.service.engine import MixingTimeQuery, VariationCurveQuery

ALL_BACKENDS = list(available_backends())
FLOAT64_BACKENDS = [b for b in ALL_BACKENDS if backend_numeric(b) == "float64"]

SOURCES = [0, 3, 7, 11, 19]
WALKS = [1, 2, 4, 8, 16]
EPSILON = 0.25


def _engine(loader, backend=None, **kwargs):
    policy = None if backend is None else ExecutionPolicy(backend=backend)
    return QueryEngine(
        OperatorRegistry(capacity=3, loader=loader),
        ResultCache(max_entries=64),
        policy=policy,
        **kwargs,
    )


class TestFloat64KeySharing:
    def test_float64_backends_share_cache_entries(self, loader, graphs):
        """An answer computed under one float64 backend is a cache hit
        for every other float64 backend (including the default)."""
        batch = measure_mixing(graphs["era"], WALKS, sources=SOURCES).distances
        with _engine(loader, backend="tiled") as warm:
            first = warm.variation_curve("era", SOURCES, WALKS)
            assert not first.cache_hit
            assert np.array_equal(np.asarray(first.value), batch)
            shared_cache = warm.cache
            # A numpy-backed engine over the *same cache* hits the
            # tiled-computed entry: same fingerprint, same bits.
            with QueryEngine(
                OperatorRegistry(capacity=3, loader=loader),
                shared_cache,
                policy=ExecutionPolicy(backend="numpy"),
            ) as default:
                hit = default.variation_curve("era", SOURCES, WALKS)
                assert hit.cache_hit
                assert hit.fingerprint == first.fingerprint
                assert np.array_equal(np.asarray(hit.value), batch)

    @pytest.mark.parametrize("backend", FLOAT64_BACKENDS)
    def test_fingerprints_backend_invariant(self, loader, backend):
        with _engine(loader, backend=backend) as eng:
            fp = eng.mixing_time("era", 0, EPSILON).fingerprint
        with _engine(loader) as plain:
            assert plain.mixing_time("era", 0, EPSILON).fingerprint == fp


class TestFloat32KeyIsolation:
    def test_float32_keys_suffixed_and_separate(self, loader, graphs):
        """float32 answers live under ``<key>:float32`` — never the
        float64 entry, even over a shared cache."""
        with _engine(loader) as f64_engine:
            f64 = f64_engine.variation_curve("era", SOURCES, WALKS)
            shared_cache = f64_engine.cache
            with QueryEngine(
                OperatorRegistry(capacity=3, loader=loader),
                shared_cache,
                policy=ExecutionPolicy(backend="float32"),
            ) as f32_engine:
                f32 = f32_engine.variation_curve("era", SOURCES, WALKS)
                assert not f32.cache_hit  # float64 entry NOT served
                assert f32.fingerprint == f"{f64.fingerprint}:float32"
                # Second float32 request hits its own entry.
                again = f32_engine.variation_curve("era", SOURCES, WALKS)
                assert again.cache_hit
                assert np.array_equal(
                    np.asarray(again.value), np.asarray(f32.value)
                )
        diff = np.abs(np.asarray(f32.value) - np.asarray(f64.value)).max()
        assert diff <= FLOAT32_CURVE_ATOL

    def test_numeric_tag_none_without_policy(self, loader):
        with _engine(loader) as eng:
            assert eng._numeric_tag() is None
        with _engine(loader, backend="tiled") as eng:
            assert eng._numeric_tag() is None
        with _engine(loader, backend="float32") as eng:
            assert eng._numeric_tag() == "float32"


class TestServingRegimeNeutralityPerBackend:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_coalesced_equals_direct_equals_serial(self, loader, graphs, backend):
        policy = ExecutionPolicy(backend=backend)
        serial = TransitionOperator(graphs["era"]).hitting_times(
            SOURCES, EPSILON, policy=policy
        )
        with _engine(loader, backend=backend, coalesce_window=0.0) as direct_eng:
            direct = hitting_times_via_service(direct_eng, "era", SOURCES, EPSILON)
        with _engine(loader, backend=backend, coalesce_window=0.1) as coal_eng:
            coalesced = hitting_times_via_service(coal_eng, "era", SOURCES, EPSILON)
            assert coal_eng.stats()["coalesced_requests"] > 0
        assert np.array_equal(direct.times, serial.times)
        assert np.array_equal(coalesced.times, serial.times)
        assert np.array_equal(coalesced.final_distances, serial.final_distances)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_curve_direct_equals_serial(self, loader, graphs, backend):
        policy = ExecutionPolicy(backend=backend)
        serial = measure_mixing(
            graphs["erb"], WALKS, sources=SOURCES, policy=policy
        ).distances
        with _engine(loader, backend=backend) as eng:
            served = eng.variation_curve("erb", SOURCES, WALKS)
        assert np.array_equal(np.asarray(served.value), serial)


class TestModeVocabulary:
    def test_unknown_mode_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown measurement mode"):
            MixingTimeQuery("era", 0, EPSILON, mode="warp")
        with pytest.raises(ConfigurationError):
            VariationCurveQuery("era", (0,), (1, 2), mode="warp")
        with pytest.raises(ConfigurationError, match="laziness"):
            MixingTimeQuery(
                "era", 0, EPSILON, mode="non_backtracking", laziness=0.5
            )

    def test_modes_key_separately(self, loader):
        with _engine(loader) as eng:
            keys = {
                eng.mixing_time("era", 0, EPSILON, mode=m).fingerprint
                for m in ("point_mass", "uniform_start", "non_backtracking")
            }
        assert len(keys) == 3

    def test_default_mode_keeps_historical_fingerprint(self):
        """``mode="point_mass"`` must not perturb pre-existing cache
        keys — the vocabulary extension is invisible to old clients."""
        explicit = MixingTimeQuery("era", 0, EPSILON, mode="point_mass")
        implicit = MixingTimeQuery("era", 0, EPSILON)
        assert explicit.fingerprint("g") == implicit.fingerprint("g")

    def test_uniform_start_shares_one_entry_across_sources(self, loader, graphs):
        with _engine(loader) as eng:
            a = eng.mixing_time("era", 0, EPSILON, mode="uniform_start")
            b = eng.mixing_time("era", 17, EPSILON, mode="uniform_start")
            assert not a.cache_hit and b.cache_hit
            assert a.fingerprint == b.fingerprint
            assert a.value["source"] == b.value["source"] == -1
            assert a.value["mode"] == "uniform_start"

    def test_non_backtracking_equals_direct(self, loader, graphs):
        direct = non_backtracking_hitting_times(graphs["era"], [0], EPSILON)
        with _engine(loader) as eng:
            served = eng.mixing_time("era", 0, EPSILON, mode="non_backtracking")
        assert served.value["mode"] == "non_backtracking"
        assert served.value["time"] == int(direct.times[0])

    def test_non_backtracking_curve_equals_direct(self, loader, graphs):
        direct = measure_mixing(
            graphs["erb"], WALKS, sources=SOURCES, mode="non_backtracking"
        ).distances
        with _engine(loader) as eng:
            served = eng.variation_curve(
                "erb", SOURCES, WALKS, mode="non_backtracking"
            )
        assert np.array_equal(np.asarray(served.value), direct)

    def test_non_default_modes_bypass_coalescing(self, loader):
        """Coalescing batches point-mass sources into one sweep; other
        modes answer per-request (uniform-start caches instead)."""
        with _engine(loader, coalesce_window=0.1) as eng:
            eng.mixing_time("era", 0, EPSILON, mode="non_backtracking")
            eng.mixing_time("era", 3, EPSILON, mode="non_backtracking")
            assert eng.stats()["coalesced_requests"] == 0
