"""Result cache: LRU semantics, freezing, stats, disable switch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service import ResultCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k") is None
        frozen = cache.put("k", np.arange(3.0))
        got = cache.get("k")
        assert got is frozen
        np.testing.assert_array_equal(got, np.arange(3.0))

    def test_put_returns_frozen_readonly_array(self):
        cache = ResultCache()
        frozen = cache.put("k", np.arange(4.0))
        assert not frozen.flags.writeable
        with pytest.raises(ValueError):
            frozen[0] = 99.0

    def test_freeze_recurses_into_tuples(self):
        cache = ResultCache()
        frozen = cache.put("k", (np.arange(2.0), np.arange(3.0)))
        assert all(not part.flags.writeable for part in frozen)

    def test_contains_and_len(self):
        cache = ResultCache(max_entries=4)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert "a" in cache and "b" in cache and "c" not in cache
        assert len(cache) == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="max_entries"):
            ResultCache(max_entries=-1)


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.get("a") == 1.0  # refresh a; b is now LRU
        cache.put("c", 3.0)
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_eviction_counted(self):
        cache = ResultCache(max_entries=1)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.stats().evictions == 1

    def test_evicted_value_stays_usable(self):
        # Eviction drops the cache's reference, never the object: a value
        # handed to a client before eviction must stay intact.
        cache = ResultCache(max_entries=1)
        held = cache.put("a", np.arange(5.0))
        cache.put("b", np.zeros(1))
        np.testing.assert_array_equal(held, np.arange(5.0))


class TestDisabled:
    def test_zero_capacity_stores_nothing_but_still_freezes(self):
        cache = ResultCache(max_entries=0)
        frozen = cache.put("k", np.arange(2.0))
        assert not frozen.flags.writeable
        assert cache.get("k") is None
        assert len(cache) == 0


class TestStats:
    def test_hit_rate(self):
        cache = ResultCache(max_entries=4)
        cache.put("k", 1.0)
        cache.get("k")
        cache.get("miss")
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_empty_hit_rate_is_zero(self):
        assert ResultCache().stats().hit_rate == 0.0
