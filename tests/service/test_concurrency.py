"""Thread-safety under parallel clients: OBS instruments, the result
cache, and the coalescing engine.

The OBS tests hammer single instruments from many threads and assert
*exact* totals — before instruments carried their own locks, a GIL
release between the read and the write of ``value += delta`` dropped
updates under exactly this load (service request threads all recording
into ``service.request_seconds``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service import ResultCache

THREADS = 8
PER_THREAD = 2_000


def _hammer(fn):
    barrier = threading.Barrier(THREADS)

    def run():
        barrier.wait()
        for _ in range(PER_THREAD):
            fn()

    threads = [threading.Thread(target=run) for _ in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestInstrumentThreadSafety:
    def test_counter_add_is_atomic(self):
        counter = Counter("c")
        _hammer(lambda: counter.add(1.0))
        assert counter.value == THREADS * PER_THREAD

    def test_histogram_observe_is_atomic(self):
        histogram = Histogram("h")
        _hammer(lambda: histogram.observe(0.5))
        assert histogram.count == THREADS * PER_THREAD
        assert histogram.total == pytest.approx(0.5 * THREADS * PER_THREAD)
        assert histogram.min == histogram.max == 0.5

    def test_gauge_updates_counted_exactly(self):
        gauge = Gauge("g")
        _hammer(lambda: gauge.set(1.0))
        assert gauge.updates == THREADS * PER_THREAD

    def test_registry_conveniences_thread_safe(self):
        registry = MetricsRegistry(enabled=True)
        _hammer(lambda: registry.add("requests"))
        _hammer(lambda: registry.observe("latency", 1.0))
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests"] == THREADS * PER_THREAD
        assert snapshot["histograms"]["latency"]["count"] == THREADS * PER_THREAD

    def test_disabled_path_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        _hammer(lambda: registry.add("requests"))
        assert registry.snapshot()["counters"] == {}


class TestCacheUnderParallelClients:
    def test_concurrent_hits_and_misses_stay_consistent(self):
        cache = ResultCache(max_entries=16)
        value = np.arange(8.0)
        errors = []

        def client(i):
            try:
                key = f"k{i % 4}"
                got = cache.get(key)
                if got is None:
                    got = cache.put(key, value)
                assert np.array_equal(got, value)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(client, range(1_000)))
        assert not errors
        stats = cache.stats()
        assert stats.hits + stats.misses == 1_000

    def test_eviction_mid_query_never_corrupts_a_held_value(self):
        # max_entries=1 maximises eviction churn: nearly every put evicts
        # a value some other thread may still hold.
        cache = ResultCache(max_entries=1)
        errors = []

        def client(i):
            try:
                key = f"k{i % 8}"
                expected = float(i % 8)
                got = cache.get(key)
                if got is None:
                    got = cache.put(key, np.full(4, expected))
                assert np.array_equal(got, np.full(4, float(got[0])))
                assert not got.flags.writeable
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(client, range(2_000)))
        assert not errors
        assert cache.stats().evictions > 0

    def test_racing_puts_of_same_key_are_benign(self):
        cache = ResultCache(max_entries=8)
        value = np.arange(16.0)
        barrier = threading.Barrier(THREADS)
        outputs = []

        def put():
            barrier.wait()
            outputs.append(cache.put("k", value.copy()))

        threads = [threading.Thread(target=put) for _ in range(THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every returned frozen value and the cached survivor agree.
        survivor = cache.get("k")
        for out in outputs:
            assert np.array_equal(out, survivor)
        assert len(cache) == 1


class TestEngineUnderParallelClients:
    def test_concurrent_mixed_queries_answers_independent_of_interleaving(
        self, loader, graphs
    ):
        from repro.core.mixing import measure_mixing
        from repro.core.walks import TransitionOperator
        from repro.service import OperatorRegistry, QueryEngine

        walks = [1, 2, 4, 8]
        curve_expected = measure_mixing(graphs["era"], walks, sources=[0, 1]).distances
        times_expected = TransitionOperator(graphs["erb"]).hitting_times([3], 0.25)
        errors = []

        with QueryEngine(
            OperatorRegistry(capacity=2, loader=loader), coalesce_window=0.01
        ) as engine:

            def client(i):
                try:
                    if i % 2 == 0:
                        reply = engine.variation_curve("era", [0, 1], walks)
                        assert np.array_equal(
                            np.asarray(reply.value), curve_expected
                        )
                    else:
                        reply = engine.mixing_time("erb", 3, 0.25)
                        assert reply.value["time"] == int(times_expected.times[0])
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append(exc)

            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                list(pool.map(client, range(64)))
        assert not errors
