"""HTTP front-end: wire identity, error mapping, server lifecycle."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core.mixing import measure_mixing
from repro.service import (
    HTTPServiceClient,
    OperatorRegistry,
    QueryEngine,
    ResultCache,
    ServiceClient,
    ServiceServer,
)

WALKS = [1, 2, 4, 8]
SOURCES = [0, 2, 5]


@pytest.fixture
def server(loader):
    engine = QueryEngine(
        OperatorRegistry(capacity=3, loader=loader),
        ResultCache(max_entries=32),
        coalesce_window=0.02,
    )
    with ServiceServer(engine, own_engine=True) as srv:
        yield srv


@pytest.fixture
def client(server):
    host, port = server.address
    with HTTPServiceClient(host, port) as c:
        yield c


class TestWireIdentity:
    def test_variation_curve_bit_identical_over_http(self, client, graphs):
        batch = measure_mixing(graphs["era"], WALKS, sources=SOURCES).distances
        served = client.variation_curve("era", SOURCES, WALKS)
        # json round-trips doubles via shortest repr: equality is exact.
        assert np.array_equal(np.asarray(served.value, dtype=np.float64), batch)

    def test_http_equals_in_process_client(self, server, client, graphs):
        in_process = ServiceClient(server.engine)
        http_reply = client.query(
            {"type": "slem", "dataset": "era"}
        )
        local_reply = in_process.query({"type": "slem", "dataset": "era"})
        assert http_reply["value"] == local_reply["value"]
        assert http_reply["fingerprint"] == local_reply["fingerprint"]

    def test_mixing_time_fields_survive_the_wire(self, client):
        reply = client.mixing_time("era", 0, 0.25)
        assert set(reply.value) == {"source", "time", "final_distance", "epsilon"}
        assert isinstance(reply.value["time"], int)

    def test_admission_over_http(self, client):
        reply = client.admission("era", [1, 2, 5], 4, seed=7)
        assert reply.value["suspects"] == [1, 2, 5]
        assert len(reply.value["accepted"]) == 3

    def test_second_request_hits_cache(self, client):
        cold = client.slem("era")
        warm = client.slem("era")
        assert not cold.cache_hit and warm.cache_hit
        assert warm.value == cold.value


class TestEndpoints:
    def test_health(self, client):
        assert client.health() == {"status": "ok"}

    def test_stats_counts_requests(self, client):
        client.slem("era")
        stats = client.stats()
        assert stats["requests"] >= 1
        assert stats["registry"]["builds"] >= 1

    def test_unknown_path_is_404(self, client):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="404"):
            client._request("GET", "/nope")


class TestErrorMapping:
    def test_unknown_query_type_is_400(self, client):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="400"):
            client.query({"type": "eigenvector_party", "dataset": "era"})

    def test_unknown_dataset_is_400(self, client):
        from repro.errors import ConfigurationError

        # The test loader raises KeyError -> 500 is wrong; the engine maps
        # loader failures through as-is, so probe with a bad query field
        # instead (epsilon out of range -> ConfigurationError -> 400).
        with pytest.raises(ConfigurationError, match="400"):
            client.mixing_time("era", 0, 1.5)

    def test_malformed_json_is_400(self, client):
        conn = client._conn
        conn.request(
            "POST",
            "/query",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = json.loads(response.read().decode())
        assert response.status == 400
        assert "JSON" in body["error"]

    def test_server_survives_bad_requests(self, client):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            client.query({"type": "nope"})
        # Still serving afterwards.
        assert client.health() == {"status": "ok"}


class TestConcurrentClients:
    def test_parallel_http_clients_get_identical_answers(self, server, graphs):
        batch = measure_mixing(graphs["era"], WALKS, sources=SOURCES).distances
        host, port = server.address
        results = []
        errors = []

        def hammer():
            try:
                with HTTPServiceClient(host, port) as c:
                    reply = c.variation_curve("era", SOURCES, WALKS)
                    results.append(np.asarray(reply.value, dtype=np.float64))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 6
        for got in results:
            assert np.array_equal(got, batch)
