"""The service's central guarantee: every serving regime is bit-identical
to direct serial batch computation.

Each test computes an answer the batch way (direct library call, fresh
operator, serial policy) and through the service under some regime —
cold, cached, coalesced, via the batch adapters, workers 1 vs 2, warm
``operator=`` parameter — and asserts ``np.array_equal`` (never
``allclose``): the claim is equality of bits, not closeness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mixing import estimate_mixing_time, measure_mixing
from repro.core.parallel import parallel_backend_available
from repro.core.runtime import ExecutionPolicy
from repro.core.spectral import slem
from repro.core.walks import TransitionOperator
from repro.service import OperatorRegistry, QueryEngine, ResultCache
from repro.service.batch import (
    admission_via_service,
    hitting_times_via_service,
    variation_curves_via_service,
)

SOURCES = [0, 3, 7, 11, 19]
WALKS = [1, 2, 4, 8, 16]
EPSILON = 0.25


class TestVariationCurves:
    def test_cold_query_equals_batch(self, cold_engine, graphs):
        batch = measure_mixing(graphs["era"], WALKS, sources=SOURCES).distances
        served = cold_engine.variation_curve("era", SOURCES, WALKS)
        assert np.array_equal(np.asarray(served.value), batch)

    def test_cache_hit_equals_cold(self, engine, graphs):
        batch = measure_mixing(graphs["era"], WALKS, sources=SOURCES).distances
        cold = engine.variation_curve("era", SOURCES, WALKS)
        hit = engine.variation_curve("era", SOURCES, WALKS)
        assert not cold.cache_hit and hit.cache_hit
        assert np.array_equal(np.asarray(hit.value), batch)
        assert np.array_equal(np.asarray(hit.value), np.asarray(cold.value))

    def test_coalesced_per_source_rows_equal_batch(self, engine, graphs):
        batch = measure_mixing(graphs["era"], WALKS, sources=SOURCES).distances
        served = variation_curves_via_service(
            engine, "era", SOURCES, WALKS, per_source=True
        )
        assert np.array_equal(served, batch)

    def test_warm_operator_parameter_equals_cold_construction(self, graphs):
        graph = graphs["era"]
        warm_op = TransitionOperator(graph)
        warm = measure_mixing(graph, WALKS, sources=SOURCES, operator=warm_op)
        cold = measure_mixing(graph, WALKS, sources=SOURCES)
        assert np.array_equal(warm.distances, cold.distances)
        # Same for the hitting-time estimator.
        warm_est = estimate_mixing_time(
            graph, EPSILON, sources=SOURCES, operator=warm_op
        )
        cold_est = estimate_mixing_time(graph, EPSILON, sources=SOURCES)
        assert np.array_equal(warm_est.per_source, cold_est.per_source)

    @pytest.mark.skipif(
        not parallel_backend_available(), reason="needs shared-memory backend"
    )
    def test_workers_two_equals_serial(self, loader, graphs):
        batch = measure_mixing(graphs["era"], WALKS, sources=SOURCES).distances
        with QueryEngine(
            OperatorRegistry(loader=loader),
            ResultCache(max_entries=0),
            policy=ExecutionPolicy(workers=2),
        ) as engine:
            served = engine.variation_curve("era", SOURCES, WALKS)
            assert np.array_equal(np.asarray(served.value), batch)


class TestMixingTimes:
    def test_point_mass_queries_equal_batch_hitting_times(self, engine, graphs):
        direct = TransitionOperator(graphs["era"]).hitting_times(SOURCES, EPSILON)
        served = hitting_times_via_service(engine, "era", SOURCES, EPSILON)
        assert np.array_equal(served.times, direct.times)
        assert np.array_equal(served.final_distances, direct.final_distances)

    def test_single_query_fields(self, cold_engine, graphs):
        direct = TransitionOperator(graphs["era"]).hitting_times([7], EPSILON)
        served = cold_engine.mixing_time("era", 7, EPSILON)
        assert served.value["source"] == 7
        assert served.value["time"] == int(direct.times[0])
        assert served.value["final_distance"] == float(direct.final_distances[0])

    def test_coalesced_and_direct_agree(self, loader, graphs):
        direct = TransitionOperator(graphs["era"]).hitting_times(SOURCES, EPSILON)
        # Large window + threaded submission forces actual coalescing.
        with QueryEngine(
            OperatorRegistry(loader=loader),
            ResultCache(max_entries=0),
            coalesce_window=0.1,
        ) as engine:
            served = hitting_times_via_service(engine, "era", SOURCES, EPSILON)
            assert engine.stats()["coalesced_requests"] > 0
        assert np.array_equal(served.times, direct.times)
        assert np.array_equal(served.final_distances, direct.final_distances)


class TestSlemAndAdmission:
    def test_slem_equals_direct(self, cold_engine, graphs):
        assert cold_engine.slem("era").value == float(slem(graphs["era"]))

    def test_slem_cache_hit_identical(self, engine, graphs):
        cold = engine.slem("era")
        hit = engine.slem("era")
        assert hit.cache_hit
        assert hit.value == cold.value == float(slem(graphs["era"]))

    def test_admission_equals_direct_sybillimit(self, cold_engine, graphs):
        from repro.sybil.scenario import no_attack_scenario
        from repro.sybil.sybillimit import SybilLimit, SybilLimitParams

        suspects = [1, 2, 5, 9]
        protocol = SybilLimit(
            no_attack_scenario(graphs["era"]),
            SybilLimitParams(route_length=4),
            seed=7,
        )
        outcome = protocol.admission_sweep(0, [4], suspects=suspects, seed=7)[0]
        served = admission_via_service(
            cold_engine, "era", suspects, 4, verifier=0, seed=7
        )
        assert served["accepted"] == [bool(a) for a in outcome.accepted]
        assert served["intersected"] == [bool(i) for i in outcome.intersected]
        assert served["admission_rate"] == float(outcome.admission_rate)

    def test_admission_is_never_coalesced(self, engine):
        # Two admission queries with different suspect sets, submitted
        # inside one coalescing window, must not share a sweep.
        a = engine.admission("era", [1, 2], 4, seed=3)
        b = engine.admission("era", [1, 2, 5], 4, seed=3)
        assert a.batch_size == 1 and b.batch_size == 1
        assert not a.coalesced and not b.coalesced
        assert a.fingerprint != b.fingerprint


class TestCacheKeySeparation:
    def test_same_params_different_dataset_do_not_collide(self, engine):
        a = engine.variation_curve("era", SOURCES[:2], WALKS)
        b = engine.variation_curve("erb", SOURCES[:2], WALKS)
        assert a.fingerprint != b.fingerprint
        assert not b.cache_hit

    def test_epsilon_changes_mixing_key(self, engine):
        a = engine.mixing_time("era", 0, 0.25)
        b = engine.mixing_time("era", 0, 0.125)
        assert a.fingerprint != b.fingerprint

    def test_laziness_changes_key_and_answer_channel(self, engine):
        a = engine.variation_curve("bridge", [0], [2, 4], laziness=0.0)
        b = engine.variation_curve("bridge", [0], [2, 4], laziness=0.5)
        assert a.fingerprint != b.fingerprint
        assert not np.array_equal(np.asarray(a.value), np.asarray(b.value))
