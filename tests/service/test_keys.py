"""Cache-key builders: content addressing, not name addressing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph
from repro.service import graph_fingerprint, query_fingerprint


def _graph():
    return Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)], num_nodes=4)


class TestGraphFingerprint:
    def test_deterministic_and_content_addressed(self):
        a = graph_fingerprint(_graph())
        b = graph_fingerprint(_graph())
        assert a == b
        assert len(a) == 64 and int(a, 16) >= 0  # sha256 hex

    def test_different_structure_differs(self):
        a = graph_fingerprint(_graph())
        other = Graph.from_edges([(0, 1), (1, 2), (2, 0), (1, 3)], num_nodes=4)
        assert graph_fingerprint(other) != a

    def test_memoised_on_instance(self):
        g = _graph()
        first = graph_fingerprint(g)
        assert g._memo["graph_fingerprint"] == first
        # Second call returns the memo (same string object).
        assert graph_fingerprint(g) is first


class TestQueryFingerprint:
    def test_param_name_order_is_irrelevant(self):
        a = query_fingerprint("mixing_time", "gk", "plain:0.0", source=3, epsilon=0.1)
        b = query_fingerprint("mixing_time", "gk", "plain:0.0", epsilon=0.1, source=3)
        assert a == b

    @pytest.mark.parametrize(
        "variant",
        [
            dict(query_type="variation_curve"),  # different query type
            dict(graph_key="other"),  # different graph
            dict(operator_kind="plain:0.5"),  # different dynamics
            dict(params=dict(source=4, epsilon=0.1)),  # different param value
            dict(params=dict(source=3, epsilon=0.2)),
        ],
    )
    def test_every_dimension_changes_the_key(self, variant):
        base = dict(
            query_type="mixing_time",
            graph_key="gk",
            operator_kind="plain:0.0",
            params=dict(source=3, epsilon=0.1),
        )
        merged = {**base, **variant}
        key = query_fingerprint(
            base["query_type"], base["graph_key"], base["operator_kind"], **base["params"]
        )
        other = query_fingerprint(
            merged["query_type"],
            merged["graph_key"],
            merged["operator_kind"],
            **merged["params"],
        )
        assert key != other

    def test_array_params_hash_by_content(self):
        a = query_fingerprint(
            "variation_curve", "gk", "plain:0.0", sources=[1, 2], walk_lengths=[4, 8]
        )
        b = query_fingerprint(
            "variation_curve",
            "gk",
            "plain:0.0",
            sources=list(np.asarray([1, 2])),
            walk_lengths=[4, 8],
        )
        assert a == b
