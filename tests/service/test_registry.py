"""Operator registry: warm reuse, ref-counted leases, LRU + unlink."""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.core.parallel import parallel_backend_available
from repro.errors import ConfigurationError
from repro.service import OperatorRegistry


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class TestWarmReuse:
    def test_builds_once_per_dataset(self, registry, loader):
        with registry.acquire("era") as lease_a:
            pass
        with registry.acquire("era") as lease_b:
            pass
        assert loader.calls == ["era"]
        assert lease_a.operator is lease_b.operator
        stats = registry.stats()
        assert stats["builds"] == 1 and stats["hits"] == 1

    def test_stationary_is_memoised_on_the_warm_operator(self, registry):
        with registry.acquire("era") as lease:
            assert lease.stationary is lease.operator.stationary()
            np.testing.assert_allclose(lease.stationary.sum(), 1.0)

    def test_laziness_gets_its_own_entry(self, registry, loader):
        with registry.acquire("era"):
            pass
        with registry.acquire("era", laziness=0.5) as lazy:
            assert lazy.operator.laziness == pytest.approx(0.5)
        assert loader.calls == ["era", "era"]

    def test_graph_key_is_content_fingerprint(self, registry, graphs):
        from repro.service import graph_fingerprint

        with registry.acquire("era") as lease:
            assert lease.graph_key == graph_fingerprint(graphs["era"])

    def test_unknown_kind_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="operator kind"):
            registry.acquire("era", kind="teleport")

    def test_concurrent_first_requests_build_once(self, loader):
        registry = OperatorRegistry(capacity=3, loader=loader)
        barrier = threading.Barrier(4)
        leases = []

        def acquire():
            barrier.wait()
            with registry.acquire("era") as lease:
                leases.append(lease.operator)

        threads = [threading.Thread(target=acquire) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert loader.calls == ["era"]
        assert all(op is leases[0] for op in leases)
        registry.close()


class TestLifecycle:
    def test_lru_eviction_beyond_capacity(self, loader):
        registry = OperatorRegistry(capacity=2, loader=loader)
        for name in ("era", "erb", "erc"):
            with registry.acquire(name):
                pass
        stats = registry.stats()
        assert stats["entries"] == 2 and stats["evictions"] == 1
        # "era" (least recently used) was the victim: re-acquiring rebuilds.
        with registry.acquire("era"):
            pass
        assert loader.calls.count("era") == 2
        registry.close()

    def test_leased_entries_are_never_evicted(self, loader):
        registry = OperatorRegistry(capacity=1, loader=loader)
        lease = registry.acquire("era")
        with registry.acquire("erb"):
            pass
        # "era" is pinned by the live lease; "erb" (refs==0) was evicted
        # instead even though "era" is older.
        assert registry.stats()["entries"] >= 1
        with registry.acquire("era") as again:
            assert again.operator is lease.operator
        lease.release()
        registry.close()

    def test_capacity_must_be_positive(self, loader):
        with pytest.raises(ConfigurationError, match="capacity"):
            OperatorRegistry(capacity=0, loader=loader)

    def test_closed_registry_refuses_leases(self, loader):
        registry = OperatorRegistry(loader=loader)
        registry.close()
        with pytest.raises(RuntimeError, match="closed"):
            registry.acquire("era")
        registry.close()  # idempotent

    @pytest.mark.skipif(
        not parallel_backend_available(), reason="needs shared-memory backend"
    )
    def test_close_unlinks_warm_segments(self, loader):
        before = _shm_entries()
        registry = OperatorRegistry(capacity=2, loader=loader, publish=True)
        with registry.acquire("era"):
            pass
        assert len(_shm_entries() - before) == 1  # one warm segment live
        registry.close()
        assert _shm_entries() - before == set()

    @pytest.mark.skipif(
        not parallel_backend_available(), reason="needs shared-memory backend"
    )
    def test_eviction_unlinks_the_victims_segment(self, loader):
        before = _shm_entries()
        registry = OperatorRegistry(capacity=1, loader=loader, publish=True)
        with registry.acquire("era"):
            pass
        with registry.acquire("erb"):
            pass
        # Only the surviving entry's segment remains.
        assert len(_shm_entries() - before) == 1
        registry.close()
        assert _shm_entries() - before == set()
