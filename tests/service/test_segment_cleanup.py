"""Shared-memory segments must never outlive their owner.

POSIX shared memory persists until unlinked: a process killed between
publish and close leaves its segment in /dev/shm until reboot.  These
tests pin the three layers of defense added for the service (which holds
warm segments for its whole lifetime, making the interrupt window wide):

* explicit cleanup (:func:`cleanup_published_segments`),
* atexit cleanup on normal interpreter shutdown,
* signal cleanup on SIGTERM landing mid-sweep (subprocess test that
  diffs /dev/shm before and after),

plus the fork guard: a child process inheriting the parent's segment
table must never unlink segments it does not own.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.parallel import (
    cleanup_published_segments,
    describe_operator,
    parallel_backend_available,
    pin_published_operator,
    publish_operator,
    unpin_published_operator,
)
from repro.core.walks import TransitionOperator

pytestmark = pytest.mark.skipif(
    not parallel_backend_available(), reason="needs shared-memory backend"
)

SHM_DIR = "/dev/shm"


def _shm_entries():
    try:
        return set(os.listdir(SHM_DIR))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        pytest.skip("no /dev/shm on this platform")


def _publish(graph):
    operator = TransitionOperator(graph)
    kind, matrix, extras = describe_operator(operator)
    return publish_operator(kind, matrix, operator.stationary(), **extras)


class TestExplicitCleanup:
    def test_cleanup_reclaims_unclosed_segments(self, er_medium):
        before = _shm_entries()
        handle = _publish(er_medium)
        assert len(_shm_entries() - before) == 1
        assert cleanup_published_segments() == 1
        assert _shm_entries() - before == set()
        handle.close()  # double-close after external unlink is a no-op

    def test_closed_handles_are_not_double_counted(self, er_medium):
        handle = _publish(er_medium)
        handle.close()
        assert cleanup_published_segments() == 0

    def test_pinned_segments_are_tracked_too(self, er_medium):
        before = _shm_entries()
        operator = TransitionOperator(er_medium)
        handle = pin_published_operator(operator)
        assert handle is not None
        assert len(_shm_entries() - before) == 1
        unpin_published_operator(operator)
        assert _shm_entries() - before == set()
        assert not unpin_published_operator(operator)  # second unpin: no-op


class TestForkGuard:
    def test_forked_child_never_unlinks_parent_segments(self, er_medium):
        before = _shm_entries()
        handle = _publish(er_medium)
        try:
            pid = os.fork()
            if pid == 0:  # child: inherits the table, owns nothing
                reclaimed = cleanup_published_segments()
                os._exit(0 if reclaimed == 0 else 42)
            _, status = os.waitpid(pid, 0)
            assert os.waitstatus_to_exitcode(status) == 0
            # Parent's segment survived the child's cleanup.
            assert len(_shm_entries() - before) == 1
        finally:
            handle.close()
        assert _shm_entries() - before == set()


_CHILD_TEMPLATE = r"""
import os, sys, threading, time
sys.path.insert(0, {src!r})
import numpy as np
from repro.core.parallel import install_signal_cleanup, pin_published_operator
from repro.core.walks import TransitionOperator
from repro.generators import erdos_renyi_gnm
from repro.graph import largest_connected_component

{install}

graph = largest_connected_component(erdos_renyi_gnm(80, 240, seed=3))[0]
operator = TransitionOperator(graph)
handle = pin_published_operator(operator)
assert handle is not None

def sweep():
    # A genuinely long-running sweep so SIGTERM lands mid-computation.
    operator.hitting_times(np.arange(graph.num_nodes), 1e-12, max_steps=2_000_000)

threading.Thread(target=sweep, daemon=True).start()
print("READY", handle.payload.shm_name, flush=True)
time.sleep(120)
"""


def _run_child(tmp_path, install_line):
    src = os.path.join(os.getcwd(), "src")
    script = tmp_path / "child.py"
    script.write_text(_CHILD_TEMPLATE.format(src=src, install=install_line))
    return subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _await_ready(proc):
    line = proc.stdout.readline().strip()
    assert line.startswith("READY "), f"child failed: {proc.stderr.read()}"
    return line.split()[1]


class TestSigtermMidSweep:
    def test_sigterm_leaves_no_stale_segment(self, tmp_path):
        before = _shm_entries()
        proc = _run_child(tmp_path, "install_signal_cleanup()")
        try:
            segment = _await_ready(proc)
            assert segment in _shm_entries() - before
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()
        # Exit status still reports death-by-SIGTERM (handler re-raises
        # under the default disposition after unlinking).
        assert proc.returncode == -signal.SIGTERM
        deadline = time.time() + 10
        while time.time() < deadline and (_shm_entries() - before):
            time.sleep(0.05)
        assert _shm_entries() - before == set()

    def test_without_handler_the_segment_would_leak(self, tmp_path):
        # Control experiment: same child, no install_signal_cleanup().
        # SIGTERM's default disposition skips atexit, so the segment
        # survives — proving the handler (not the kernel) is what cleans
        # up in the test above.
        before = _shm_entries()
        proc = _run_child(tmp_path, "pass")
        try:
            segment = _await_ready(proc)
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
            leaked = _shm_entries() - before
            assert segment in leaked  # the leak this PR closes
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()
            # Reclaim by hand so the suite leaves /dev/shm clean.
            for name in _shm_entries() - before:
                try:
                    os.unlink(os.path.join(SHM_DIR, name))
                except FileNotFoundError:
                    pass
        assert _shm_entries() - before == set()


class TestAtexitCleanup:
    def test_normal_exit_unlinks_unclosed_segments(self, tmp_path):
        src = os.path.join(os.getcwd(), "src")
        script = tmp_path / "exit_child.py"
        script.write_text(
            "import sys\n"
            f"sys.path.insert(0, {src!r})\n"
            "from repro.core.parallel import pin_published_operator\n"
            "from repro.core.walks import TransitionOperator\n"
            "from repro.generators import erdos_renyi_gnm\n"
            "from repro.graph import largest_connected_component\n"
            "graph = largest_connected_component(erdos_renyi_gnm(60, 180, seed=3))[0]\n"
            "handle = pin_published_operator(TransitionOperator(graph))\n"
            "assert handle is not None\n"
            "print(handle.payload.shm_name, flush=True)\n"
            # exits without close(): atexit must reclaim
        )
        before = _shm_entries()
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()
        assert _shm_entries() - before == set()
