"""Trend queries and the append_delta mutation verb on the engine.

The versioned-cache contract: every trend fingerprint is keyed on the
temporal graph's content-derived ``version`` (delta-log head), so an
append *automatically* invalidates every cached trend answer — no
explicit invalidation path exists or is needed.  Engines also keep
private journals (``compact(base_time)`` copies), so one engine's
appends never leak into another engine or the memoised loader instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExecutionPolicy
from repro.errors import ConfigurationError, DatasetError, GraphFormatError
from repro.graph import EdgeDelta, Graph, TemporalGraph
from repro.service import (
    MixingTrendQuery,
    OperatorRegistry,
    QueryEngine,
    ResultCache,
    SlemTrendQuery,
)


def _fresh_temporal() -> TemporalGraph:
    # Ring plus chord: connected and non-bipartite in every window.
    base = Graph.from_edges(
        np.array([(i, (i + 1) % 14) for i in range(14)] + [(0, 2)], dtype=np.int64)
    )
    temporal = TemporalGraph(base)
    temporal.append(EdgeDelta(10, insert=[(3, 6), (4, 8)]))
    temporal.append(EdgeDelta(20, insert=[(1, 5)], delete=[(3, 6)]))
    return temporal


@pytest.fixture()
def shared_temporal():
    return _fresh_temporal()


def _engine(shared_temporal, **kwargs) -> QueryEngine:
    defaults = dict(
        registry=OperatorRegistry(
            loader=lambda name: shared_temporal.snapshot(), publish=False
        ),
        cache=ResultCache(),
        policy=ExecutionPolicy(workers=1),
        coalesce_window=0.0,
        temporal_loader=lambda name: shared_temporal,
    )
    defaults.update(kwargs)
    return QueryEngine(**defaults)


class TestTrendQueries:
    def test_slem_trend_answer_and_version(self, shared_temporal):
        with _engine(shared_temporal) as engine:
            result = engine.slem_trend("toy")
            assert result.graph_version == shared_temporal.version
            assert result.value["times"] == list(shared_temporal.times())
            assert len(result.value["slem"]) == 3
            assert not result.coalesced and result.batch_size == 1

    def test_mixing_trend_answer_shape(self, shared_temporal):
        with _engine(shared_temporal) as engine:
            result = engine.mixing_trend("toy", [1, 3], num_sources=4, seed=1)
            value = result.value
            assert value["walk_lengths"] == [1, 3]
            assert len(value["sources"]) == 4
            assert len(value["worst_case"]) == len(value["times"])
            assert len(value["worst_case"][0]) == 2
            assert all(0.0 <= d <= 1.0 for row in value["worst_case"] for d in row)

    def test_identical_resubmit_hits_cache(self, shared_temporal):
        with _engine(shared_temporal) as engine:
            cold = engine.slem_trend("toy")
            warm = engine.slem_trend("toy")
            assert not cold.cache_hit and warm.cache_hit
            assert warm.value == cold.value
            assert warm.fingerprint == cold.fingerprint

    def test_different_params_different_fingerprint(self, shared_temporal):
        with _engine(shared_temporal) as engine:
            a = engine.slem_trend("toy", warm=True)
            b = engine.slem_trend("toy", warm=False)
            assert a.fingerprint != b.fingerprint
            assert not b.cache_hit

    def test_times_validation(self, shared_temporal):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            SlemTrendQuery("toy", times=[20, 10])
        with pytest.raises(ConfigurationError, match="non-empty"):
            MixingTrendQuery("toy", (1, 2), times=[])

    def test_unknown_dataset_raises(self, shared_temporal):
        def loader(name):
            raise DatasetError(f"unknown temporal dataset {name!r}")

        with _engine(shared_temporal, temporal_loader=loader) as engine:
            with pytest.raises(DatasetError, match="unknown temporal"):
                engine.slem_trend("nope")


class TestAppendDelta:
    def test_append_invalidates_cached_trends(self, shared_temporal):
        with _engine(shared_temporal) as engine:
            before = engine.slem_trend("toy")
            assert engine.slem_trend("toy").cache_hit
            new_version = engine.append_delta("toy", 30, insert=[(2, 9)])
            assert new_version != before.graph_version
            after = engine.slem_trend("toy")
            assert not after.cache_hit
            assert after.graph_version == new_version
            assert len(after.value["times"]) == len(before.value["times"]) + 1

    def test_cas_pin_semantics(self, shared_temporal):
        with _engine(shared_temporal) as engine:
            version = engine.slem_trend("toy").graph_version
            with pytest.raises(ConfigurationError, match="version"):
                engine.append_delta(
                    "toy", 30, insert=[(2, 9)], expect_version="stale-pin"
                )
            # The refused append left the journal untouched.
            assert engine.slem_trend("toy").graph_version == version
            new = engine.append_delta(
                "toy", 30, insert=[(2, 9)], expect_version=version
            )
            assert new != version

    def test_invalid_delta_rejected_atomically(self, shared_temporal):
        with _engine(shared_temporal) as engine:
            version = engine.slem_trend("toy").graph_version
            with pytest.raises(GraphFormatError, match="non-existent"):
                engine.append_delta("toy", 30, delete=[(0, 7)])
            assert engine.slem_trend("toy").graph_version == version

    def test_stats_reports_temporal_state(self, shared_temporal):
        with _engine(shared_temporal) as engine:
            engine.slem_trend("toy")
            engine.append_delta("toy", 30, insert=[(2, 9)])
            stats = engine.stats()
            assert stats["temporal"]["appends"] == 1
            assert set(stats["temporal"]["datasets"]) == {"toy"}
            assert stats["temporal"]["datasets"]["toy"] != _fresh_temporal().version


class TestEngineIsolation:
    def test_appends_do_not_leak_to_loader_or_peers(self, shared_temporal):
        original = shared_temporal.version
        with _engine(shared_temporal) as first:
            first.slem_trend("toy")
            first.append_delta("toy", 30, insert=[(2, 9)])
            # The loader's instance is untouched: the engine mutated a
            # compact(base_time) private copy.
            assert shared_temporal.version == original
            assert 30 not in shared_temporal.times()
            with _engine(shared_temporal) as second:
                result = second.slem_trend("toy")
                assert result.graph_version == original

    def test_private_copy_preserves_version_until_mutation(self, shared_temporal):
        with _engine(shared_temporal) as engine:
            # compact(base_time) is a zero-delta fold: same content, same
            # version string — cache keys survive the engine boundary.
            assert engine.slem_trend("toy").graph_version == shared_temporal.version
