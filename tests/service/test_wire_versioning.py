"""Wire-schema versioning: v1 byte-compatibility and the v2 contract.

The compatibility pin: a payload **without** a ``schema`` key is a v1
request and must receive exactly the six historical reply keys — no
``schema``, no ``graph_version`` — so pre-temporal clients never see a
key they did not ask for.  ``schema: repro.service.query/v2`` unlocks
the trend vocabulary, ``append_delta`` and optimistic ``graph_version``
pins, over both front-ends (in-process and HTTP) via the single
:func:`~repro.service.client.answer_payload` codec seam.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExecutionPolicy
from repro.errors import ConfigurationError
from repro.graph import EdgeDelta, Graph, TemporalGraph
from repro.service import (
    SCHEMA_V2,
    HTTPServiceClient,
    OperatorRegistry,
    QueryEngine,
    ResultCache,
    ServiceClient,
    ServiceServer,
    answer_payload,
)

#: The historical reply shape, pinned exactly.  Adding a key to v1 is a
#: wire-compatibility break even if every client "should" ignore it.
V1_REPLY_KEYS = ["batch_size", "cache_hit", "coalesced", "fingerprint", "latency_s", "value"]


def _temporal() -> TemporalGraph:
    base = Graph.from_edges(
        np.array([(i, (i + 1) % 14) for i in range(14)] + [(0, 2)], dtype=np.int64)
    )
    temporal = TemporalGraph(base)
    temporal.append(EdgeDelta(10, insert=[(3, 6), (4, 8)]))
    return temporal


@pytest.fixture()
def engine():
    temporal = _temporal()
    with QueryEngine(
        registry=OperatorRegistry(loader=lambda name: temporal.snapshot(), publish=False),
        cache=ResultCache(),
        policy=ExecutionPolicy(workers=1),
        coalesce_window=0.0,
        temporal_loader=lambda name: temporal,
    ) as eng:
        yield eng


class TestV1Compatibility:
    def test_v1_reply_keys_pinned(self, engine):
        reply = answer_payload(engine, {"type": "slem", "dataset": "toy"})
        assert sorted(reply) == V1_REPLY_KEYS

    def test_v1_rejects_trend_types(self, engine):
        with pytest.raises(ConfigurationError, match="unknown query type"):
            answer_payload(engine, {"type": "slem_trend", "dataset": "toy"})

    def test_unknown_schema_refused(self, engine):
        with pytest.raises(ConfigurationError, match="unknown wire schema"):
            answer_payload(
                engine,
                {"schema": "repro.service.query/v9", "type": "slem", "dataset": "toy"},
            )

    def test_v1_and_v2_same_value_same_fingerprint(self, engine):
        v1 = answer_payload(engine, {"type": "slem", "dataset": "toy"})
        v2 = answer_payload(
            engine, {"schema": SCHEMA_V2, "type": "slem", "dataset": "toy"}
        )
        assert v1["value"] == v2["value"]
        assert v1["fingerprint"] == v2["fingerprint"]


class TestV2Contract:
    def test_v2_reply_adds_schema_and_version(self, engine):
        reply = answer_payload(
            engine, {"schema": SCHEMA_V2, "type": "slem", "dataset": "toy"}
        )
        assert sorted(reply) == sorted(V1_REPLY_KEYS + ["schema", "graph_version"])
        assert reply["schema"] == SCHEMA_V2
        assert reply["graph_version"] == engine.stats()["temporal"].get(
            "datasets", {}
        ).get("toy", reply["graph_version"])

    def test_v2_trend_query(self, engine):
        reply = answer_payload(
            engine, {"schema": SCHEMA_V2, "type": "slem_trend", "dataset": "toy"}
        )
        assert reply["schema"] == SCHEMA_V2
        assert isinstance(reply["graph_version"], str)
        assert len(reply["value"]["slem"]) == 2

    def test_matching_pin_accepted(self, engine):
        version = answer_payload(
            engine, {"schema": SCHEMA_V2, "type": "slem_trend", "dataset": "toy"}
        )["graph_version"]
        pinned = answer_payload(
            engine,
            {
                "schema": SCHEMA_V2,
                "type": "slem_trend",
                "dataset": "toy",
                "graph_version": version,
            },
        )
        assert pinned["cache_hit"]

    def test_stale_pin_refused(self, engine):
        with pytest.raises(ConfigurationError, match="graph_version mismatch"):
            answer_payload(
                engine,
                {
                    "schema": SCHEMA_V2,
                    "type": "slem_trend",
                    "dataset": "toy",
                    "graph_version": "stale",
                },
            )

    def test_non_string_pin_rejected(self, engine):
        with pytest.raises(ConfigurationError, match="must be a string"):
            answer_payload(
                engine,
                {
                    "schema": SCHEMA_V2,
                    "type": "slem",
                    "dataset": "toy",
                    "graph_version": 7,
                },
            )

    def test_append_delta_reply_shape(self, engine):
        reply = answer_payload(
            engine,
            {
                "schema": SCHEMA_V2,
                "type": "append_delta",
                "dataset": "toy",
                "timestamp": 20,
                "insert": [[2, 9]],
            },
        )
        assert sorted(reply) == ["graph_version", "schema", "value"]
        assert reply["value"] == {
            "dataset": "toy",
            "timestamp": 20,
            "num_insert": 1,
            "num_delete": 0,
        }

    def test_append_delta_refuses_unknown_fields(self, engine):
        # The engine-level kwarg name must not be silently ignored on
        # the wire: a client spelling the pin 'expect_version' would
        # otherwise mutate without the CAS protection it asked for.
        with pytest.raises(ConfigurationError, match="unknown field"):
            answer_payload(
                engine,
                {
                    "schema": SCHEMA_V2,
                    "type": "append_delta",
                    "dataset": "toy",
                    "timestamp": 20,
                    "insert": [[2, 9]],
                    "expect_version": "whatever",
                },
            )

    def test_append_delta_requires_fields(self, engine):
        with pytest.raises(ConfigurationError, match="requires 'timestamp'"):
            answer_payload(
                engine,
                {"schema": SCHEMA_V2, "type": "append_delta", "dataset": "toy"},
            )


class TestFrontEndParity:
    """ServiceClient.query and HTTP POST /query share answer_payload."""

    def test_inprocess_client_matches_codec(self, engine):
        client = ServiceClient(engine)
        payload = {"schema": SCHEMA_V2, "type": "slem_trend", "dataset": "toy"}
        via_client = client.query(dict(payload))
        via_codec = answer_payload(engine, dict(payload))
        assert via_client["value"] == via_codec["value"]
        assert via_client["fingerprint"] == via_codec["fingerprint"]
        assert via_client["graph_version"] == via_codec["graph_version"]

    def test_http_round_trip(self, engine):
        with ServiceServer(engine) as server:
            host, port = server.address
            http = HTTPServiceClient(host, port)
            # v1 verb: historical keys only.
            v1 = http.query({"type": "slem", "dataset": "toy"})
            assert sorted(v1) == V1_REPLY_KEYS
            # v2 trend verb decodes with a graph_version.
            trend = http.slem_trend("toy")
            assert trend.graph_version is not None
            assert len(trend.value["slem"]) == 2
            # append_delta mutates and returns the new version...
            new_version = http.append_delta("toy", 30, insert=[(2, 9)])
            assert new_version != trend.graph_version
            # ...and a stale pin maps to HTTP 400.
            with pytest.raises(ConfigurationError, match="400"):
                http.query(
                    {
                        "schema": SCHEMA_V2,
                        "type": "slem_trend",
                        "dataset": "toy",
                        "graph_version": trend.graph_version,
                    }
                )
