"""Metamorphic and oracle tests for the attacker-strategy suite.

Three contracts from the module docstring of :mod:`repro.sybil.attacks`:

* ``g=0`` reduces every strategy to the no-attack scenario bit-for-bit;
* budgets nest — at fixed seed, a smaller budget's attack edges are a
  prefix of a larger one's and the sybil region is identical;
* relabeling honest node ids leaves admission counts invariant (checked
  on the label-equivariant quantities: exact escape probability, SumUp
  vote collection, SybilRank admission counts).

Plus oracle tests pinning each region topology / attachment policy
against a naive reference implementation, hypothesis-driven invariant
sweeps, and the degenerate-input errors (single sybil node, star
regions, disconnected honest region -> ``ScenarioError``).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ScenarioError
from repro.generators import erdos_renyi_gnm
from repro.graph import Graph, is_connected, largest_connected_component
from repro.sybil import (
    ATTACHMENTS,
    REGION_TOPOLOGIES,
    AttackStrategy,
    SumUpParams,
    SybilScenario,
    attack_edge_order,
    available_attack_strategies,
    build_attack_scenario,
    escape_probability,
    get_attack_strategy,
    no_attack_scenario,
    register_attack_strategy,
    sumup_collect_votes,
    sybil_region_topology,
    sybilrank,
)
from repro.sybil.attacks import _STRATEGIES
from repro.sybil.sumup import sumup_admission

ALL_STRATEGIES = available_attack_strategies()


@pytest.fixture(scope="module")
def honest():
    graph, _ = largest_connected_component(erdos_renyi_gnm(90, 300, seed=17))
    return graph


def edge_set(graph: Graph) -> set:
    return {(int(u), int(v)) for u, v in graph.edges()}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_roster_covers_every_attachment_and_topology(self):
        strategies = [get_attack_strategy(name) for name in ALL_STRATEGIES]
        assert {s.attachment for s in strategies} == set(ATTACHMENTS)
        assert {s.region for s in strategies} == set(REGION_TOPOLOGIES)

    def test_unknown_name_lists_available(self):
        with pytest.raises(ScenarioError, match="available:"):
            get_attack_strategy("no-such-attacker")

    def test_duplicate_registration_guarded(self):
        with pytest.raises(ScenarioError, match="already registered"):
            register_attack_strategy(AttackStrategy("random"))

    def test_replace_allows_override(self):
        original = get_attack_strategy("random")
        try:
            override = AttackStrategy("random", attachment="targeted")
            assert register_attack_strategy(override, replace=True) is override
            assert get_attack_strategy("random").attachment == "targeted"
        finally:
            _STRATEGIES["random"] = original

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attachment": "bogus"},
            {"region": "bogus"},
            {"branching": 0},
            {"degree": 0},
            {"cluster_size": 1},
            {"name": ""},
        ],
    )
    def test_invalid_strategy_params_rejected_at_construction(self, kwargs):
        fields = {"name": "x"}
        fields.update(kwargs)
        with pytest.raises(ScenarioError):
            AttackStrategy(**fields)


# ----------------------------------------------------------------------
# Metamorphic: g = 0 identity
# ----------------------------------------------------------------------
class TestZeroBudgetIdentity:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_g0_is_no_attack_scenario_bit_for_bit(self, honest, name):
        built = build_attack_scenario(
            honest, name, num_sybil=25, num_attack_edges=0, seed=5
        )
        baseline = no_attack_scenario(honest)
        assert built.num_honest == baseline.num_honest
        assert built.attack_edges.shape == (0, 2)
        assert built.attack_edges.dtype == np.int64
        assert np.array_equal(built.graph.indptr, baseline.graph.indptr)
        assert np.array_equal(built.graph.indices, baseline.graph.indices)
        # Not merely equal arrays: the honest graph object itself.
        assert built.graph is honest


# ----------------------------------------------------------------------
# Metamorphic: nested budgets
# ----------------------------------------------------------------------
class TestNestedBudgets:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_smaller_budget_is_prefix_of_larger(self, honest, name):
        small = build_attack_scenario(
            honest, name, num_sybil=25, num_attack_edges=6, seed=11
        )
        large = build_attack_scenario(
            honest, name, num_sybil=25, num_attack_edges=18, seed=11
        )
        assert np.array_equal(large.attack_edges[:6], small.attack_edges)

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_region_identical_across_budgets(self, honest, name):
        small = build_attack_scenario(
            honest, name, num_sybil=25, num_attack_edges=6, seed=11
        )
        large = build_attack_scenario(
            honest, name, num_sybil=25, num_attack_edges=18, seed=11
        )
        extra = {(int(u), int(v)) for u, v in large.attack_edges[6:]}
        assert edge_set(large.graph) - edge_set(small.graph) == extra

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_attack_edges_distinct_and_in_range(self, honest, name):
        scenario = build_attack_scenario(
            honest, name, num_sybil=25, num_attack_edges=30, seed=11
        )
        edges = scenario.attack_edges
        assert len({(int(u), int(v)) for u, v in edges}) == 30
        assert np.all(edges[:, 0] >= 0) and np.all(edges[:, 0] < honest.num_nodes)
        assert np.all(edges[:, 1] >= honest.num_nodes)
        assert np.all(edges[:, 1] < scenario.graph.num_nodes)


# ----------------------------------------------------------------------
# Metamorphic: monotonicity — more attack edges never decreases sybil
# admissions at fixed seed/defense.
# ----------------------------------------------------------------------
BUDGET_LADDER = (2, 6, 14, 30)


class TestMonotonicityInBudget:
    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_escape_probability_never_decreases_with_budget(self, honest, name):
        """The exact absorbing computation: every added attack edge opens
        strictly more escape routes, so escape mass is monotone in g."""
        walks = [1, 2, 4, 8, 16]
        previous = None
        for g in BUDGET_LADDER:
            scenario = build_attack_scenario(
                honest, name, num_sybil=25, num_attack_edges=g, seed=23
            )
            escape = escape_probability(scenario, walks)
            if previous is not None:
                assert np.all(escape >= previous - 1e-12)
            previous = escape

    @pytest.mark.parametrize("defense", ["sumup", "sybilrank"])
    @pytest.mark.parametrize("name", ["random", "targeted", "seam"])
    def test_defense_sybil_admissions_never_decrease(self, honest, name, defense):
        """Fixed-seed spot check of the full chain: nested attacks, one
        deterministic defense, admitted-sybil counts along the ladder."""
        admitted = []
        for g in BUDGET_LADDER:
            scenario = build_attack_scenario(
                honest, name, num_sybil=25, num_attack_edges=g, seed=23
            )
            suspects = scenario.sybil_nodes()
            if defense == "sumup":
                accepted = sumup_admission(
                    scenario, 0, suspects, SumUpParams(c_max=20)
                )
            else:
                result = sybilrank(scenario, [0])
                top = result.accept_top(scenario.num_honest)
                accepted = np.isin(suspects, top)
            admitted.append(int(accepted.sum()))
        assert admitted == sorted(admitted), admitted


# ----------------------------------------------------------------------
# Metamorphic: relabeling honest ids leaves admission counts invariant
# ----------------------------------------------------------------------
def relabel_scenario(scenario: SybilScenario, perm: np.ndarray) -> SybilScenario:
    """Apply an honest-region permutation to a whole scenario.

    Sybil ids keep their (offset) positions; honest endpoints of the
    combined graph and of the attack edges are renamed by ``perm``.
    """
    n_honest = scenario.num_honest
    full = np.concatenate(
        [perm, np.arange(n_honest, scenario.graph.num_nodes, dtype=np.int64)]
    )
    edges = scenario.graph.edges()
    relabeled = Graph.from_edges(
        np.stack([full[edges[:, 0]], full[edges[:, 1]]], axis=1),
        num_nodes=scenario.graph.num_nodes,
    )
    attack = scenario.attack_edges.copy()
    attack[:, 0] = perm[attack[:, 0]]
    return SybilScenario(
        graph=relabeled, num_honest=n_honest, attack_edges=attack
    )


class TestRelabelInvariance:
    @pytest.mark.parametrize("name", ["random", "targeted", "cluster-bomb"])
    def test_escape_probability_invariant(self, honest, name):
        scenario = build_attack_scenario(
            honest, name, num_sybil=20, num_attack_edges=10, seed=3
        )
        perm = np.random.default_rng(99).permutation(honest.num_nodes).astype(np.int64)
        relabeled = relabel_scenario(scenario, perm)
        walks = [1, 3, 6, 12]
        got = escape_probability(relabeled, walks)
        want = escape_probability(scenario, walks)
        assert np.allclose(got, want, rtol=0, atol=1e-12)

    @pytest.mark.parametrize("name", ["random", "seam"])
    def test_sumup_admission_counts_invariant(self, honest, name):
        scenario = build_attack_scenario(
            honest, name, num_sybil=20, num_attack_edges=8, seed=3
        )
        perm = np.random.default_rng(7).permutation(honest.num_nodes).astype(np.int64)
        relabeled = relabel_scenario(scenario, perm)
        suspects = np.concatenate(
            [np.arange(1, scenario.num_honest, dtype=np.int64), scenario.sybil_nodes()]
        )
        # The collector and every suspect are renamed consistently.
        suspects_rel = np.where(
            suspects < scenario.num_honest, perm[np.minimum(suspects, scenario.num_honest - 1)], suspects
        )
        params = SumUpParams(c_max=15)
        base = sumup_collect_votes(scenario, 0, suspects, params)
        rel = sumup_collect_votes(relabeled, int(perm[0]), suspects_rel, params)
        assert rel.votes_collected == base.votes_collected
        assert rel.votes_cast == base.votes_cast

    @pytest.mark.parametrize("name", ["random", "targeted"])
    def test_sybilrank_admission_counts_invariant(self, honest, name):
        scenario = build_attack_scenario(
            honest, name, num_sybil=20, num_attack_edges=8, seed=3
        )
        perm = np.random.default_rng(13).permutation(honest.num_nodes).astype(np.int64)
        relabeled = relabel_scenario(scenario, perm)
        base = sybilrank(scenario, [0])
        rel = sybilrank(relabeled, [int(perm[0])])
        # Scores are permutation-equivariant (same power iteration, ids
        # renamed); admission counts are therefore invariant.
        full = np.concatenate(
            [perm, np.arange(scenario.num_honest, scenario.graph.num_nodes)]
        )
        assert np.allclose(rel.scores[full], base.scores, rtol=0, atol=1e-9)
        base_top = base.accept_top(scenario.num_honest)
        rel_top = rel.accept_top(scenario.num_honest)
        assert (base_top < scenario.num_honest).sum() == (
            rel_top < scenario.num_honest
        ).sum()

    def test_scenario_degree_multiset_invariant(self, honest):
        scenario = build_attack_scenario(
            honest, "targeted", num_sybil=20, num_attack_edges=8, seed=3
        )
        perm = np.random.default_rng(21).permutation(honest.num_nodes).astype(np.int64)
        relabeled = relabel_scenario(scenario, perm)
        assert np.array_equal(
            np.sort(relabeled.graph.degrees), np.sort(scenario.graph.degrees)
        )


# ----------------------------------------------------------------------
# Oracle tests: region topologies vs naive references
# ----------------------------------------------------------------------
class TestRegionOracles:
    def test_clique_is_complete(self):
        strategy = AttackStrategy("t", region="clique")
        region = sybil_region_topology(strategy, 9, seed=0)
        naive = {(u, v) for u in range(9) for v in range(u + 1, 9)}
        assert edge_set(region) == naive

    def test_kary_tree_matches_parent_formula(self):
        strategy = AttackStrategy("t", region="tree", branching=3)
        region = sybil_region_topology(strategy, 14, seed=0)
        naive = {(min((c - 1) // 3, c), max((c - 1) // 3, c)) for c in range(1, 14)}
        assert edge_set(region) == naive

    def test_star_degenerate_tree(self):
        """branching >= n-1 collapses the tree to a star around node 0."""
        strategy = AttackStrategy("t", region="tree", branching=40)
        region = sybil_region_topology(strategy, 12, seed=0)
        assert edge_set(region) == {(0, c) for c in range(1, 12)}
        assert region.degrees[0] == 11
        assert np.all(region.degrees[1:] == 1)

    def test_random_recursive_tree_is_a_tree(self):
        strategy = AttackStrategy("t", region="tree")
        region = sybil_region_topology(strategy, 30, seed=4)
        assert region.num_edges == 29
        assert is_connected(region)

    def test_expander_is_regular_and_connected(self):
        strategy = AttackStrategy("t", region="expander", degree=4)
        region = sybil_region_topology(strategy, 20, seed=4)
        assert np.all(region.degrees == 4)
        assert is_connected(region)

    def test_expander_degree_clamped_to_keep_nd_even(self):
        strategy = AttackStrategy("t", region="expander", degree=4)
        region = sybil_region_topology(strategy, 5, seed=4)
        # d = min(4, 5-1) = 4 keeps n*d even -> 4-regular on 5 nodes.
        assert np.all(region.degrees == 4)

    def test_cluster_bomb_matches_naive_reference(self):
        strategy = AttackStrategy("t", region="cluster_bomb", cluster_size=4)
        region = sybil_region_topology(strategy, 14, seed=0)
        # Naive reference: balanced split of 14 nodes into floor(14/4)=3
        # cliques (sizes 5, 5, 4), anchors linked in a ring.
        sizes = [5, 5, 4]
        naive = set()
        anchors = []
        start = 0
        for size in sizes:
            anchors.append(start)
            for i in range(start, start + size):
                for j in range(i + 1, start + size):
                    naive.add((i, j))
            start += size
        for i in range(3):
            a, b = anchors[i], anchors[(i + 1) % 3]
            naive.add((min(a, b), max(a, b)))
        assert edge_set(region) == naive

    def test_cluster_bomb_two_clusters_single_bridge(self):
        strategy = AttackStrategy("t", region="cluster_bomb", cluster_size=4)
        region = sybil_region_topology(strategy, 8, seed=0)
        cut = [(u, v) for u, v in region.edges() if (u < 4) != (v < 4)]
        assert len(cut) == 1
        assert is_connected(region)

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_region_has_no_isolated_nodes(self, name):
        strategy = get_attack_strategy(name)
        region = sybil_region_topology(strategy, 23, seed=9)
        assert np.all(region.degrees >= 1)

    def test_single_node_region_rejected(self):
        with pytest.raises(ScenarioError, match="at least 2"):
            sybil_region_topology(AttackStrategy("t", region="clique"), 1, seed=0)


# ----------------------------------------------------------------------
# Oracle tests: attachment policies vs naive references
# ----------------------------------------------------------------------
class TestAttachmentOracles:
    def test_targeted_order_matches_naive_sort(self, honest):
        order = attack_edge_order(honest, "targeted")
        degrees = honest.degrees
        naive = sorted(range(honest.num_nodes), key=lambda v: (-degrees[v], v))
        assert order.tolist() == naive

    def test_random_order_is_a_permutation(self, honest):
        rng = np.random.default_rng(5)
        order = attack_edge_order(honest, "random", rng=rng)
        assert np.array_equal(np.sort(order), np.arange(honest.num_nodes))

    def test_seam_order_ranks_boundary_nodes_first(self, honest):
        from repro.community import spectral_sweep_cut

        order = attack_edge_order(honest, "seam")
        cut = spectral_sweep_cut(honest)
        side = np.zeros(honest.num_nodes, dtype=bool)
        side[cut.side] = True
        cross = np.zeros(honest.num_nodes, dtype=np.int64)
        for u, v in honest.edges():
            if side[u] != side[v]:
                cross[u] += 1
                cross[v] += 1
        naive = sorted(range(honest.num_nodes), key=lambda v: (-cross[v], v))
        assert order.tolist() == naive

    def test_unknown_attachment_rejected(self, honest):
        with pytest.raises(ScenarioError, match="unknown attachment"):
            attack_edge_order(honest, "bogus")

    def test_victims_distinct_while_budget_below_honest_count(self, honest):
        scenario = build_attack_scenario(
            honest, "targeted", num_sybil=30, num_attack_edges=honest.num_nodes,
            seed=2,
        )
        victims = scenario.attack_edges[:, 0]
        assert np.unique(victims).size == honest.num_nodes


# ----------------------------------------------------------------------
# Degenerate inputs
# ----------------------------------------------------------------------
class TestDegenerateInputs:
    def test_single_sybil_node_rejected(self, honest):
        with pytest.raises(ScenarioError, match="at least 2"):
            build_attack_scenario(
                honest, "random", num_sybil=1, num_attack_edges=3, seed=0
            )

    def test_disconnected_honest_region_rejected(self):
        disconnected = Graph.from_edges(
            np.array([[0, 1], [2, 3]], dtype=np.int64), num_nodes=4
        )
        with pytest.raises(ScenarioError, match="connected"):
            build_attack_scenario(
                disconnected, "random", num_sybil=5, num_attack_edges=2, seed=0
            )

    def test_tiny_honest_region_rejected(self):
        with pytest.raises(ScenarioError, match="at least 2"):
            build_attack_scenario(
                Graph.empty(1), "random", num_sybil=5, num_attack_edges=2, seed=0
            )

    def test_negative_budget_rejected(self, honest):
        with pytest.raises(ScenarioError, match="nonnegative"):
            build_attack_scenario(
                honest, "random", num_sybil=5, num_attack_edges=-1, seed=0
            )

    def test_budget_beyond_all_pairs_rejected(self):
        small, _ = largest_connected_component(erdos_renyi_gnm(6, 10, seed=1))
        with pytest.raises(ScenarioError, match="more attack edges"):
            build_attack_scenario(
                small, "random", num_sybil=2, num_attack_edges=small.num_nodes * 2 + 1,
                seed=0,
            )


# ----------------------------------------------------------------------
# Hypothesis-driven invariants
# ----------------------------------------------------------------------
@st.composite
def scenario_inputs(draw):
    n = draw(st.integers(min_value=12, max_value=60))
    m = draw(st.integers(min_value=2 * n, max_value=4 * n))
    graph_seed = draw(st.integers(min_value=0, max_value=2**31))
    honest, _ = largest_connected_component(
        erdos_renyi_gnm(n, min(m, n * (n - 1) // 2), seed=graph_seed)
    )
    num_sybil = draw(st.integers(min_value=2, max_value=20))
    budget = draw(st.integers(min_value=0, max_value=honest.num_nodes))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    name = draw(st.sampled_from(ALL_STRATEGIES))
    return honest, name, num_sybil, budget, seed


class TestHypothesisInvariants:
    @given(scenario_inputs())
    @settings(max_examples=25, deadline=None)
    def test_builder_invariants(self, inputs):
        honest, name, num_sybil, budget, seed = inputs
        scenario = build_attack_scenario(
            honest, name, num_sybil=num_sybil, num_attack_edges=budget, seed=seed
        )
        assert scenario.num_honest == honest.num_nodes
        assert scenario.num_attack_edges == budget
        if budget == 0:
            assert scenario.graph is honest
            assert scenario.num_sybil == 0
        else:
            assert scenario.num_sybil == num_sybil
            combined = edge_set(scenario.graph)
            for h, s in scenario.attack_edges:
                assert 0 <= h < honest.num_nodes
                assert honest.num_nodes <= s < scenario.graph.num_nodes
                assert (min(int(h), int(s)), max(int(h), int(s))) in combined
            assert np.all(scenario.graph.degrees >= 1)

    @given(scenario_inputs())
    @settings(max_examples=15, deadline=None)
    def test_builder_deterministic(self, inputs):
        honest, name, num_sybil, budget, seed = inputs
        a = build_attack_scenario(
            honest, name, num_sybil=num_sybil, num_attack_edges=budget, seed=seed
        )
        b = build_attack_scenario(
            honest, name, num_sybil=num_sybil, num_attack_edges=budget, seed=seed
        )
        assert np.array_equal(a.attack_edges, b.attack_edges)
        assert np.array_equal(a.graph.indptr, b.graph.indptr)
        assert np.array_equal(a.graph.indices, b.graph.indices)

    @given(scenario_inputs(), st.integers(min_value=0, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_prefix_property(self, inputs, delta):
        honest, name, num_sybil, budget, seed = inputs
        larger = min(budget + delta, honest.num_nodes * num_sybil)
        small = build_attack_scenario(
            honest, name, num_sybil=num_sybil, num_attack_edges=budget, seed=seed
        )
        large = build_attack_scenario(
            honest, name, num_sybil=num_sybil, num_attack_edges=larger, seed=seed
        )
        if budget == 0:
            assert small.attack_edges.shape == (0, 2)
        else:
            assert np.array_equal(large.attack_edges[:budget], small.attack_edges)
