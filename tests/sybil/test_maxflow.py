"""Unit tests for the Dinic max-flow solver."""

import pytest

from repro.sybil import FlowNetwork


class TestFlowNetwork:
    def test_single_arc(self):
        net = FlowNetwork(2)
        net.add_edge(0, 1, 5.0)
        assert net.max_flow(0, 1) == pytest.approx(5.0)

    def test_series_bottleneck(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 10.0)
        net.add_edge(1, 2, 3.0)
        assert net.max_flow(0, 2) == pytest.approx(3.0)

    def test_parallel_paths(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 2.0)
        net.add_edge(1, 3, 2.0)
        net.add_edge(0, 2, 3.0)
        net.add_edge(2, 3, 3.0)
        assert net.max_flow(0, 3) == pytest.approx(5.0)

    def test_classic_diamond_with_cross_edge(self):
        # Needs the residual arc to reroute flow.
        net = FlowNetwork(4)
        net.add_edge(0, 1, 10.0)
        net.add_edge(0, 2, 10.0)
        net.add_edge(1, 2, 1.0)
        net.add_edge(1, 3, 4.0)
        net.add_edge(2, 3, 9.0)
        assert net.max_flow(0, 3) == pytest.approx(13.0)

    def test_disconnected_zero(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1.0)
        net.add_edge(2, 3, 1.0)
        assert net.max_flow(0, 3) == 0.0

    def test_flow_on_reports_used_capacity(self):
        net = FlowNetwork(3)
        a = net.add_edge(0, 1, 7.0)
        b = net.add_edge(1, 2, 4.0)
        net.max_flow(0, 2)
        assert net.flow_on(a) == pytest.approx(4.0)
        assert net.flow_on(b) == pytest.approx(4.0)

    def test_min_cut_after_flow(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 10.0)
        net.add_edge(1, 2, 3.0)
        net.max_flow(0, 2)
        reachable = net.min_cut_reachable(0)
        assert reachable == [True, True, False]

    def test_max_flow_equals_min_cut(self):
        """Verify max-flow/min-cut duality on a random network."""
        import numpy as np

        rng = np.random.default_rng(5)
        n = 30
        net = FlowNetwork(n)
        arcs = []
        for _ in range(150):
            u, v = rng.choice(n, size=2, replace=False)
            cap = float(rng.integers(1, 10))
            arcs.append((int(u), int(v), cap))
            net.add_edge(int(u), int(v), cap)
        flow = net.max_flow(0, n - 1)
        reachable = net.min_cut_reachable(0)
        cut_capacity = sum(cap for u, v, cap in arcs if reachable[u] and not reachable[v])
        assert flow == pytest.approx(cut_capacity)

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowNetwork(1)
        net = FlowNetwork(3)
        with pytest.raises(IndexError):
            net.add_edge(0, 5, 1.0)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1.0)
        with pytest.raises(ValueError):
            net.max_flow(1, 1)

    def test_long_path_no_recursion_error(self):
        """Iterative DFS must handle paths longer than the recursion limit."""
        n = 5000
        net = FlowNetwork(n)
        for i in range(n - 1):
            net.add_edge(i, i + 1, 2.0)
        assert net.max_flow(0, n - 1) == pytest.approx(2.0)
