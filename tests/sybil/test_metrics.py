"""Unit tests for admission metrics."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.sybil import (
    AdmissionMetrics,
    SybilScenario,
    evaluate_admission,
    sybil_bound_per_attack_edge,
)


def make_scenario(num_honest: int, num_sybil: int) -> SybilScenario:
    edges = [(i, i + 1) for i in range(num_honest + num_sybil - 1)]
    return SybilScenario(
        graph=Graph.from_edges(edges),
        num_honest=num_honest,
        attack_edges=np.asarray([[num_honest - 1, num_honest]], dtype=np.int64),
    )


class TestAdmissionMetrics:
    def test_rates(self):
        m = AdmissionMetrics(honest_total=10, honest_accepted=8, sybil_total=5, sybil_accepted=1)
        assert m.honest_admission_rate == pytest.approx(0.8)
        assert m.honest_rejection_rate == pytest.approx(0.2)
        assert m.sybil_acceptance_rate == pytest.approx(0.2)
        assert m.sybils_per_attack_edge(2) == pytest.approx(0.5)

    def test_empty_populations_nan(self):
        m = AdmissionMetrics(honest_total=0, honest_accepted=0, sybil_total=0, sybil_accepted=0)
        assert np.isnan(m.honest_admission_rate)
        assert np.isnan(m.sybil_acceptance_rate)
        assert np.isnan(m.sybils_per_attack_edge(0))


class TestEvaluateAdmission:
    def test_splits_by_region(self):
        scen = make_scenario(4, 3)
        suspects = np.asarray([0, 1, 4, 5, 6])
        accepted = np.asarray([True, False, True, False, False])
        m = evaluate_admission(scen, suspects, accepted)
        assert m.honest_total == 2
        assert m.honest_accepted == 1
        assert m.sybil_total == 3
        assert m.sybil_accepted == 1

    def test_shape_mismatch(self):
        scen = make_scenario(3, 2)
        with pytest.raises(ValueError):
            evaluate_admission(scen, np.asarray([0, 1]), np.asarray([True]))


class TestBound:
    def test_linear_in_route_length(self):
        assert sybil_bound_per_attack_edge(25) == 25.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sybil_bound_per_attack_edge(0)


class TestEscapeProbability:
    def make_attack(self, g_attack: int):
        from repro.generators import erdos_renyi_gnm
        from repro.graph import largest_connected_component
        from repro.sybil import attach_sybil_region, random_sybil_region

        honest, _ = largest_connected_component(erdos_renyi_gnm(200, 1200, seed=71))
        sybil = random_sybil_region(60, seed=72)
        return attach_sybil_region(honest, sybil, g_attack, seed=73)

    def test_monotone_in_walk_length(self):
        from repro.sybil import escape_probability

        scen = self.make_attack(4)
        esc = escape_probability(scen, [1, 10, 50, 200])
        assert np.all(np.diff(esc) > 0)
        assert esc[0] >= 0
        assert esc[-1] <= 1

    def test_grows_with_attack_edges(self):
        from repro.sybil import escape_probability

        few = escape_probability(self.make_attack(2), [50])[0]
        many = escape_probability(self.make_attack(12), [50])[0]
        assert many > few

    def test_no_attack_is_zero(self):
        from repro.sybil import escape_probability, no_attack_scenario
        from repro.generators import erdos_renyi_gnm
        from repro.graph import largest_connected_component

        honest, _ = largest_connected_component(erdos_renyi_gnm(100, 600, seed=74))
        esc = escape_probability(no_attack_scenario(honest), [5, 20])
        assert np.all(esc == 0)

    def test_matches_monte_carlo(self):
        from repro.core import simulate_walk
        from repro.sybil import escape_probability

        scen = self.make_attack(6)
        w = 30
        exact = escape_probability(scen, [w], sources=[0])[0]
        rng = np.random.default_rng(75)
        trials = 3000
        hits = 0
        for _ in range(trials):
            path = simulate_walk(scen.graph, 0, w, seed=rng)
            if np.any(path >= scen.num_honest):
                hits += 1
        assert hits / trials == pytest.approx(exact, abs=0.03)

    def test_source_validation(self):
        from repro.sybil import escape_probability

        scen = self.make_attack(2)
        with pytest.raises(ValueError):
            escape_probability(scen, [5], sources=[scen.num_honest + 1])
        with pytest.raises(ValueError):
            escape_probability(scen, [5, 5])
