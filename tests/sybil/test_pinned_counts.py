"""Deterministic pinned-count tests for the less-covered Sybil defenses.

The sybilrank/sybillimit suites already pin their numerics; this module
does the same for **sybilguard**, **sumup**, **whanau** and the
**maxflow** kernel: small fixture graphs, fixed seeds, exact admission /
route / flow counts.  Any behavioural drift in the defense
implementations (route generation, ticket distribution, table
construction, augmenting-path search) shows up here as a changed integer
rather than a silent statistical shift in the paper experiments.
"""

import numpy as np
import pytest

from repro.generators import erdos_renyi_gnm, two_community_bridge
from repro.graph import largest_connected_component
from repro.sybil import (
    FlowNetwork,
    SumUpParams,
    SybilGuard,
    attach_sybil_region,
    build_whanau,
    lookup_success_rate,
    no_attack_scenario,
    random_sybil_region,
    sumup_collect_votes,
    ticket_capacities,
)


@pytest.fixture(scope="module")
def honest_graph():
    graph, _ = largest_connected_component(erdos_renyi_gnm(40, 120, seed=5))
    assert graph.num_nodes == 40 and graph.num_edges == 120
    return graph


@pytest.fixture(scope="module")
def attack_scenario(honest_graph):
    sybil = random_sybil_region(10, seed=6)
    scenario = attach_sybil_region(honest_graph, sybil, 3, seed=7)
    assert scenario.graph.num_nodes == 50
    assert scenario.num_honest == 40
    assert scenario.num_attack_edges == 3
    return scenario


class TestSybilGuardPinned:
    def test_long_routes_admit_everyone(self, attack_scenario):
        """w = 8 routes escape through the attack edges: every sybil is
        admitted — the failure mode SybilGuard's analysis warns about
        when w outgrows the mixing time of the cut."""
        outcome = SybilGuard(attack_scenario, 8, seed=11).run(0)
        honest_mask = outcome.suspects < attack_scenario.num_honest
        assert outcome.suspects.size == 49
        assert int(outcome.accepted.sum()) == 49
        assert int(outcome.accepted[honest_mask].sum()) == 39
        assert int(outcome.accepted[~honest_mask].sum()) == 10
        assert outcome.admission_rate == pytest.approx(1.0)

    def test_short_routes_are_selective(self, attack_scenario):
        """w = 2 routes rarely intersect: admission drops to a pinned 36."""
        outcome = SybilGuard(attack_scenario, 2, seed=11).run(0)
        assert int(outcome.accepted.sum()) == 36

    def test_rerun_is_deterministic(self, attack_scenario):
        a = SybilGuard(attack_scenario, 4, seed=13).run(0)
        b = SybilGuard(attack_scenario, 4, seed=13).run(0)
        np.testing.assert_array_equal(a.accepted, b.accepted)
        np.testing.assert_array_equal(a.suspects, b.suspects)


class TestSumUpPinned:
    def test_ticket_capacities_pinned(self, honest_graph):
        caps = ticket_capacities(honest_graph, 0, 6)
        assert len(caps) == 8
        assert sum(caps.values()) == pytest.approx(13.0)
        assert all(c >= 1.0 for c in caps.values())

    def test_attack_votes_bottlenecked(self, attack_scenario):
        """10 sybil voters + 5 honest voters against c_max = 6: the
        ticket envelope caps collection at a pinned 8 of 15."""
        voters = [int(v) for v in attack_scenario.sybil_nodes()] + [1, 2, 3, 4, 5]
        outcome = sumup_collect_votes(attack_scenario, 0, voters, SumUpParams(c_max=6))
        assert outcome.votes_cast == 15
        assert outcome.votes_collected == 8
        assert outcome.collection_rate == pytest.approx(8 / 15)

    def test_honest_votes_capped_by_envelope(self, honest_graph):
        outcome = sumup_collect_votes(
            no_attack_scenario(honest_graph), 0, [1, 2, 3, 4, 5, 6, 7, 8],
            SumUpParams(c_max=10),
        )
        assert outcome.votes_cast == 8
        assert outcome.votes_collected == 8

    def test_collector_cannot_vote(self, honest_graph):
        with pytest.raises(ValueError):
            sumup_collect_votes(
                no_attack_scenario(honest_graph), 0, [0, 1], SumUpParams(c_max=4)
            )


class TestWhanauPinned:
    @pytest.fixture(scope="class")
    def community_graph(self):
        graph, _labels = two_community_bridge(40, 8, 2, seed=31)
        assert graph.num_nodes == 80 and graph.num_edges == 322
        return graph

    def test_long_walks_cover_the_ring(self, community_graph):
        """w = 30 walks cross the 2-edge bridge: tables cover the ring
        and every pinned lookup succeeds."""
        tables = build_whanau(community_graph, 30, seed=32)
        assert int(tables.finger_ptr[-1]) == 1722
        assert int(tables.successor_ptr[-1]) == 6316
        stats = lookup_success_rate(tables, num_lookups=60, tries=8, seed=33)
        assert stats.lookups == 60
        assert stats.successes == 60

    def test_short_walks_leave_holes(self, community_graph):
        """w = 1 walks stay inside the communities: lookups that need an
        out-of-community owner fail — pinned at 36 of 60."""
        tables = build_whanau(community_graph, 1, seed=32)
        assert int(tables.finger_ptr[-1]) == 623
        assert int(tables.successor_ptr[-1]) == 2846
        stats = lookup_success_rate(tables, num_lookups=60, tries=8, seed=33)
        assert stats.successes == 36

    def test_rebuild_is_deterministic(self, community_graph):
        a = build_whanau(community_graph, 5, seed=34)
        b = build_whanau(community_graph, 5, seed=34)
        np.testing.assert_array_equal(a.keys, b.keys)
        np.testing.assert_array_equal(a.finger_nodes, b.finger_nodes)
        np.testing.assert_array_equal(a.successor_keys, b.successor_keys)


class TestMaxFlowPinned:
    def _clrs_network(self):
        """The CLRS Figure 26.1 network: known max flow 23."""
        net = FlowNetwork(6)
        s, v1, v2, v3, v4, t = range(6)
        arcs = {}
        for u, v, cap in [
            (s, v1, 16.0), (s, v2, 13.0), (v1, v3, 12.0), (v2, v1, 4.0),
            (v2, v4, 14.0), (v3, v2, 9.0), (v3, t, 20.0), (v4, v3, 7.0),
            (v4, t, 4.0),
        ]:
            arcs[(u, v)] = net.add_edge(u, v, cap)
        return net, arcs

    def test_clrs_max_flow_is_23(self):
        net, _arcs = self._clrs_network()
        assert net.max_flow(0, 5) == pytest.approx(23.0)

    def test_min_cut_after_max_flow(self):
        net, _arcs = self._clrs_network()
        net.max_flow(0, 5)
        reachable = net.min_cut_reachable(0)
        assert reachable[0] is True or reachable[0]
        assert not reachable[5]
        # Cut capacity across (reachable, unreachable) equals the flow.
        assert sum(reachable) < 6

    def test_flow_conservation_and_saturation(self):
        net, arcs = self._clrs_network()
        value = net.max_flow(0, 5)
        out_of_source = sum(
            net.flow_on(arc) for (u, _v), arc in arcs.items() if u == 0
        )
        into_sink = sum(
            net.flow_on(arc) for (_u, v), arc in arcs.items() if v == 5
        )
        assert out_of_source == pytest.approx(value)
        assert into_sink == pytest.approx(value)
        # The t-side arcs (v3->t, v4->t) saturate at 19 + 4 = 23.
        assert net.flow_on(arcs[(3, 5)]) == pytest.approx(19.0)
        assert net.flow_on(arcs[(4, 5)]) == pytest.approx(4.0)
