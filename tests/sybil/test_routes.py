"""Unit tests for random-route machinery (the SybilGuard/Limit primitive)."""

import numpy as np
import pytest

from repro.sybil import RouteInstances, arc_sources, reverse_slots


class TestArcHelpers:
    def test_arc_sources(self, path4):
        src = arc_sources(path4)
        assert src.size == 2 * path4.num_edges
        # CSR order: node 0's arcs first, etc.
        assert src.tolist() == [0, 1, 1, 2, 2, 3]

    def test_reverse_slots_involution(self, petersen):
        rev = reverse_slots(petersen)
        assert np.array_equal(rev[rev], np.arange(rev.size))

    def test_reverse_slots_flip_endpoints(self, petersen):
        rev = reverse_slots(petersen)
        src = arc_sources(petersen)
        dst = petersen.indices
        assert np.array_equal(src[rev], dst)
        assert np.array_equal(dst[rev], src)


class TestRouteInstances:
    def test_next_slot_is_permutation(self, bridge_graph):
        ri = RouteInstances(bridge_graph, 2, seed=1)
        for i in range(2):
            table = ri.single_instance(i)
            assert np.array_equal(np.sort(table), np.arange(table.size))

    def test_instances_differ(self, bridge_graph):
        ri = RouteInstances(bridge_graph, 2, seed=2)
        assert not np.array_equal(ri.single_instance(0), ri.single_instance(1))

    def test_route_follows_edges(self, petersen):
        ri = RouteInstances(petersen, 1, seed=3)
        traj = ri.trajectories(np.asarray([0]), 20, instance=0)
        nodes = traj[0]
        for a, b in zip(nodes[:-1], nodes[1:]):
            assert petersen.has_edge(int(a), int(b))

    def test_lazy_table_reproducible_without_cache(self, petersen):
        a = RouteInstances(petersen, 3, seed=4, cache_tables=False)
        b = RouteInstances(petersen, 3, seed=4, cache_tables=True)
        for i in range(3):
            assert np.array_equal(a.single_instance(i), b.single_instance(i))
        # And regeneration is stable call-to-call.
        assert np.array_equal(a.single_instance(1), a.single_instance(1))

    def test_instance_index_validation(self, petersen):
        ri = RouteInstances(petersen, 2, seed=5)
        with pytest.raises(IndexError):
            ri.single_instance(2)

    def test_convergence_property(self, bridge_graph):
        """Routes entering a node via the same edge share their suffix."""
        ri = RouteInstances(bridge_graph, 1, seed=6)
        table = ri.single_instance(0)
        slots = np.arange(table.size)
        # If two routes occupy the same arc at time t, they coincide at
        # every later time: follows from table being a function; check
        # the bijection means distinct arcs stay distinct instead.
        advanced = table[slots]
        assert np.unique(advanced).size == slots.size

    def test_start_slots_belong_to_nodes(self, bridge_graph):
        ri = RouteInstances(bridge_graph, 1, seed=7)
        nodes = np.asarray([0, 5, 9])
        slots = ri.start_slots(nodes, seed=8)
        src = arc_sources(bridge_graph)
        assert np.array_equal(src[slots], nodes)

    def test_tails_shape(self, bridge_graph):
        ri = RouteInstances(bridge_graph, 4, seed=9)
        tails = ri.tails(np.asarray([0, 1, 2]), 10, seed=10)
        assert tails.shape == (3, 4)

    def test_tails_at_lengths_consistent_with_tails(self, bridge_graph):
        ri = RouteInstances(bridge_graph, 2, seed=11)
        nodes = np.asarray([0, 3])
        multi = ri.tails_at_lengths(nodes, np.asarray([5, 9]), seed=77)
        single = ri.tails(nodes, 5, seed=77)
        assert np.array_equal(multi[:, :, 0], single)

    def test_tails_length_validation(self, petersen):
        ri = RouteInstances(petersen, 1, seed=12)
        with pytest.raises(ValueError):
            ri.tails(np.asarray([0]), 0)
        with pytest.raises(ValueError):
            ri.tails_at_lengths(np.asarray([0]), np.asarray([3, 3]))

    def test_undirected_edge_ids_symmetric(self, petersen):
        ri = RouteInstances(petersen, 1, seed=13)
        rev = reverse_slots(petersen)
        slots = np.arange(2 * petersen.num_edges)
        ids = ri.undirected_edge_ids(slots)
        assert np.array_equal(ids, ri.undirected_edge_ids(rev[slots]))
        assert np.unique(ids).size == petersen.num_edges

    def test_trajectory_shape(self, petersen):
        ri = RouteInstances(petersen, 1, seed=14)
        traj = ri.trajectories(np.asarray([0, 5]), 7, instance=0)
        assert traj.shape == (2, 8)

    def test_validation(self, petersen):
        with pytest.raises(ValueError):
            RouteInstances(petersen, 0)
        from repro.graph import Graph

        with pytest.raises(ValueError):
            RouteInstances(Graph.empty(3), 1)

    def test_long_route_tail_distribution_near_stationary(self, er_medium):
        """On a fast-mixing graph, long-route tails across instances must
        be close to uniform over directed arcs (the property SybilLimit
        relies on)."""
        ri = RouteInstances(er_medium, 64, seed=15)
        tails = ri.tails(np.asarray([0]), 50, seed=16).ravel()
        # 64 samples over 2m arcs: just check spread, no heavy collisions.
        _vals, counts = np.unique(tails, return_counts=True)
        assert counts.max() <= 3
