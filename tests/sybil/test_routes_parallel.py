"""Route-engine kernel contracts: blocked == reference == parallel.

The rewritten route engine (blocked multi-instance advancement, fast
permutation kernel, pool fan-out) promises **bit-for-bit** equality with
the historical per-instance ``np.lexsort`` loop at every seed, block
size and worker count.  This suite pins that promise, plus the edge
cases around block boundaries, the table cache, and isolated nodes.

Parallel comparisons are skipped where the fork + shared-memory backend
is unavailable (the runtime falls back to serial there).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import parallel_backend_available
from repro.core.parallel import maybe_parallel_route_hits, maybe_parallel_route_tails
from repro.graph import Graph
from repro.sybil import RouteInstances, SybilGuard, SybilLimit, SybilLimitParams, no_attack_scenario
from repro.sybil.routes import (
    _permutation_order,
    _stable_node_argsort,
    arc_sources,
    resolve_route_block_size,
    reverse_slots,
)

needs_pool = pytest.mark.skipif(
    not parallel_backend_available(),
    reason="fork + shared-memory backend unavailable; runtime is serial here",
)

LENGTHS = np.asarray([1, 3, 7, 12], dtype=np.int64)


def _nodes(graph):
    return np.arange(graph.num_nodes, dtype=np.int64)


# ----------------------------------------------------------------------
# Blocked serial kernel vs the historical per-instance reference
# ----------------------------------------------------------------------
class TestBlockedEqualsReference:
    @pytest.mark.parametrize("r", [1, 5, 16])
    def test_tails_at_lengths_matches_reference(self, bridge_graph, r):
        ri = RouteInstances(bridge_graph, r, seed=21)
        nodes = _nodes(bridge_graph)
        got = ri.tails_at_lengths(nodes, LENGTHS, seed=2)
        want = ri._tails_at_lengths_reference(nodes, LENGTHS, seed=2)
        assert got.dtype == np.int64
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("block_size", [1, 3, 5, 16, 1000, None])
    def test_block_size_never_changes_output(self, petersen, block_size):
        """Every blocking — including block == r and block > r — is inert."""
        ri = RouteInstances(petersen, 5, seed=8)
        nodes = _nodes(petersen)
        baseline = ri._tails_at_lengths_reference(nodes, LENGTHS, seed=4)
        got = ri.tails_at_lengths(nodes, LENGTHS, seed=4, block_size=block_size)
        assert np.array_equal(got, baseline)

    def test_single_length_checkpoint(self, petersen):
        """A one-element sweep equals both `tails` and the reference."""
        ri = RouteInstances(petersen, 4, seed=13)
        nodes = _nodes(petersen)
        sweep = ri.tails_at_lengths(nodes, [6], seed=5)
        assert sweep.shape == (petersen.num_nodes, 4, 1)
        assert np.array_equal(sweep[:, :, 0], ri.tails(nodes, 6, seed=5))
        assert np.array_equal(
            sweep, ri._tails_at_lengths_reference(nodes, [6], seed=5)
        )

    def test_tails_contiguous(self, petersen):
        ri = RouteInstances(petersen, 3, seed=1)
        assert ri.tails(_nodes(petersen), 4, seed=0).flags["C_CONTIGUOUS"]

    def test_fast_table_build_matches_lexsort(self, er_medium):
        ri = RouteInstances(er_medium, 6, seed=33)
        for i in range(ri.num_instances):
            assert np.array_equal(
                ri.single_instance(i), ri._build_instance_reference(i)
            )


class TestTableCache:
    def test_cache_tables_false_regenerates_identically(self, bridge_graph):
        cold = RouteInstances(bridge_graph, 4, seed=17, cache_tables=False)
        warm = RouteInstances(bridge_graph, 4, seed=17, cache_tables=True)
        nodes = _nodes(bridge_graph)
        first = cold.tails_at_lengths(nodes, LENGTHS, seed=3)
        assert np.array_equal(first, warm.tails_at_lengths(nodes, LENGTHS, seed=3))
        # Tables were not retained, yet every rebuild is byte-identical.
        assert cold._cache == {}
        assert np.array_equal(cold.single_instance(2), warm.single_instance(2))
        assert 2 not in cold._cache and 2 in warm._cache

    def test_memoised_arc_helpers_are_shared_and_readonly(self, petersen):
        src = arc_sources(petersen)
        rev = reverse_slots(petersen)
        assert arc_sources(petersen) is src
        assert reverse_slots(petersen) is rev
        assert not src.flags.writeable and not rev.flags.writeable
        with pytest.raises(ValueError):
            src[0] = 99


class TestEdgeCases:
    def test_isolated_node_raises_under_blocked_path(self):
        graph = Graph.from_edges([(0, 1), (1, 2)], num_nodes=4)  # node 3 isolated
        ri = RouteInstances(graph, 3, seed=2)
        with pytest.raises(ValueError, match="isolated"):
            ri.tails_at_lengths(np.arange(4), LENGTHS, seed=1)
        # Routes from non-isolated nodes still work.
        ri.tails_at_lengths(np.arange(3), LENGTHS, seed=1)

    def test_length_validation(self, petersen):
        ri = RouteInstances(petersen, 2, seed=3)
        nodes = _nodes(petersen)
        for bad in ([], [0], [3, 3], [5, 2]):
            with pytest.raises(ValueError):
                ri.tails_at_lengths(nodes, bad, seed=0)
        with pytest.raises(ValueError):
            ri.tails(nodes, 0, seed=0)

    def test_resolve_route_block_size(self):
        # Budget-driven default, clamped to the instance count.
        assert resolve_route_block_size(10, 4) == 4
        assert resolve_route_block_size(94_942, 654) == 44
        assert resolve_route_block_size(10, 654, 7) == 7
        assert resolve_route_block_size(10, 3, 7) == 3
        for bad in (0, -1, 2.5):
            with pytest.raises((ValueError, TypeError)):
                resolve_route_block_size(10, 4, bad)


# ----------------------------------------------------------------------
# Exact lexsort replacement
# ----------------------------------------------------------------------
class TestPermutationKernel:
    @given(
        n=st.integers(min_value=1, max_value=50),
        dup=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_lexsort(self, n, dup, seed):
        rng = np.random.default_rng(seed)
        num_nodes = int(rng.integers(1, 20))
        src = np.sort(rng.integers(0, num_nodes, size=n)).astype(np.int64)
        keys = rng.random(n)
        if dup and n > 1:  # force ties to exercise the stable fallback
            keys[rng.integers(0, n)] = keys[0]
        got = _permutation_order(keys, src, num_nodes)
        assert np.array_equal(got, np.lexsort((keys, src)))

    def test_stable_node_argsort_wide_range(self):
        """> 2**16 node ids exercises the multi-pass LSD radix branch."""
        rng = np.random.default_rng(0)
        nodes = rng.integers(0, 200_000, size=5000).astype(np.int64)
        got = _stable_node_argsort(nodes, 200_000)
        assert np.array_equal(got, np.argsort(nodes, kind="stable"))

    def test_stable_node_argsort_narrow_range(self):
        rng = np.random.default_rng(1)
        nodes = rng.integers(0, 50, size=4000).astype(np.int64)
        got = _stable_node_argsort(nodes, 50)
        assert np.array_equal(got, np.argsort(nodes, kind="stable"))


# ----------------------------------------------------------------------
# Pool fan-out == serial, bit-for-bit
# ----------------------------------------------------------------------
class TestParallelRoutes:
    def test_workers_none_or_one_is_serial(self, petersen):
        ri = RouteInstances(petersen, 3, seed=5)
        starts = np.tile(petersen.indptr[:-1], (3, 1)).astype(np.int64)
        for workers in (None, 0, 1):
            assert (
                maybe_parallel_route_tails(ri, starts, LENGTHS, workers=workers)
                is None
            )

    @needs_pool
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_tails_bit_equal(self, bridge_graph, workers):
        ri = RouteInstances(bridge_graph, 9, seed=29)
        nodes = _nodes(bridge_graph)
        serial = ri.tails_at_lengths(nodes, LENGTHS, seed=6)
        parallel = ri.tails_at_lengths(nodes, LENGTHS, seed=6, workers=workers)
        assert np.array_equal(serial, parallel)

    @needs_pool
    def test_parallel_tails_with_block_size(self, petersen):
        ri = RouteInstances(petersen, 7, seed=31)
        nodes = _nodes(petersen)
        serial = ri.tails_at_lengths(nodes, LENGTHS, seed=7, block_size=2)
        parallel = ri.tails_at_lengths(
            nodes, LENGTHS, seed=7, block_size=2, workers=2
        )
        assert np.array_equal(serial, parallel)

    @needs_pool
    def test_parallel_route_hits_bit_equal(self, bridge_graph):
        ri = RouteInstances(bridge_graph, 1, seed=3)
        table = ri.single_instance(0)
        src = arc_sources(bridge_graph)
        mask = np.zeros(bridge_graph.num_nodes, dtype=bool)
        mask[::7] = True
        from repro.sybil.sybilguard import route_hit_scan

        serial = route_hit_scan(
            table, bridge_graph.indices, src, mask, 0, table.size, 9
        )
        parallel = maybe_parallel_route_hits(
            table, bridge_graph.indices, src, mask, 9, workers=2
        )
        assert parallel is not None
        assert np.array_equal(serial, parallel)


class TestParallelProtocols:
    @needs_pool
    def test_sybilguard_workers_bit_equal(self, bridge_graph):
        scenario = no_attack_scenario(bridge_graph)
        guard = SybilGuard(scenario, 12, seed=41)
        serial = guard.run(0)
        parallel = guard.run(0, workers=2)
        assert np.array_equal(serial.accepted, parallel.accepted)
        assert np.array_equal(serial.suspects, parallel.suspects)

    @needs_pool
    def test_sybillimit_sweep_workers_bit_equal(self, bridge_graph):
        scenario = no_attack_scenario(bridge_graph)
        protocol = SybilLimit(
            scenario, SybilLimitParams(route_length=10), seed=43
        )
        walks = [2, 5, 10]
        serial = protocol.admission_sweep(0, walks, seed=9)
        parallel = protocol.admission_sweep(0, walks, seed=9, workers=2)
        for a, b in zip(serial, parallel):
            assert a.route_length == b.route_length
            assert np.array_equal(a.accepted, b.accepted)
            assert np.array_equal(a.intersected, b.intersected)
