"""Unit tests for the Sybil attack scenario model."""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.sybil import (
    attach_sybil_region,
    no_attack_scenario,
    random_sybil_region,
)


class TestRandomSybilRegion:
    def test_dense_style(self):
        g = random_sybil_region(50, seed=1)
        assert g.num_nodes == 50
        assert g.num_edges > 100

    def test_powerlaw_style(self):
        g = random_sybil_region(100, style="powerlaw", seed=2)
        assert g.num_nodes == 100

    def test_unknown_style(self):
        with pytest.raises(ScenarioError):
            random_sybil_region(50, style="botnet")

    def test_too_small(self):
        with pytest.raises(ScenarioError):
            random_sybil_region(1)


class TestAttach:
    def test_structure(self, er_medium):
        sybil = random_sybil_region(40, seed=3)
        scen = attach_sybil_region(er_medium, sybil, 5, seed=4)
        assert scen.num_honest == er_medium.num_nodes
        assert scen.num_sybil == 40
        assert scen.num_attack_edges == 5
        assert scen.graph.num_nodes == er_medium.num_nodes + 40

    def test_attack_edges_cross_regions(self, er_medium):
        sybil = random_sybil_region(40, seed=5)
        scen = attach_sybil_region(er_medium, sybil, 8, seed=6)
        for h, s in scen.attack_edges:
            assert scen.is_honest(h)
            assert not scen.is_honest(s)
            assert scen.graph.has_edge(int(h), int(s))

    def test_attack_edge_count_in_graph(self, er_medium):
        sybil = random_sybil_region(30, seed=7)
        scen = attach_sybil_region(er_medium, sybil, 4, seed=8)
        mask = scen.honest_mask()
        edges = scen.graph.edges()
        crossing = (mask[edges[:, 0]] != mask[edges[:, 1]]).sum()
        assert crossing == 4

    def test_honest_nodes_keep_ids(self, er_medium):
        sybil = random_sybil_region(30, seed=9)
        scen = attach_sybil_region(er_medium, sybil, 3, seed=10)
        for u, v in er_medium.iter_edges():
            assert scen.graph.has_edge(u, v)

    def test_masks_and_node_sets(self, er_medium):
        sybil = random_sybil_region(30, seed=11)
        scen = attach_sybil_region(er_medium, sybil, 3, seed=12)
        assert scen.honest_nodes().size == scen.num_honest
        assert scen.sybil_nodes().size == 30
        assert scen.honest_mask().sum() == scen.num_honest

    def test_zero_attack_edges_rejected(self, er_medium):
        with pytest.raises(ScenarioError):
            attach_sybil_region(er_medium, random_sybil_region(10, seed=1), 0)

    def test_deterministic(self, er_medium):
        sybil = random_sybil_region(20, seed=13)
        a = attach_sybil_region(er_medium, sybil, 3, seed=14)
        b = attach_sybil_region(er_medium, sybil, 3, seed=14)
        assert a.graph == b.graph
        assert np.array_equal(a.attack_edges, b.attack_edges)


class TestNoAttack:
    def test_structure(self, petersen):
        scen = no_attack_scenario(petersen)
        assert scen.num_sybil == 0
        assert scen.num_attack_edges == 0
        assert scen.graph is petersen
        assert scen.is_honest(0)
