"""Unit tests for SumUp vote collection."""

import numpy as np
import pytest

from repro.generators import erdos_renyi_gnm
from repro.graph import largest_connected_component
from repro.sybil import (
    SumUpParams,
    attach_sybil_region,
    no_attack_scenario,
    random_sybil_region,
    sumup_collect_votes,
    ticket_capacities,
)


@pytest.fixture(scope="module")
def honest_graph():
    g, _ = largest_connected_component(erdos_renyi_gnm(200, 1200, seed=41))
    return g


class TestTicketCapacities:
    def test_outward_only(self, honest_graph):
        from repro.graph import bfs_distances

        caps = ticket_capacities(honest_graph, 0, 40)
        dist = bfs_distances(honest_graph, 0)
        for (u, v), cap in caps.items():
            assert dist[v] == dist[u] + 1
            assert cap >= 1.0

    def test_total_tickets_bounded(self, honest_graph):
        c_max = 40
        caps = ticket_capacities(honest_graph, 0, c_max)
        # Tickets sent out of the collector can't exceed c_max - 1.
        outgoing = sum(cap - 1.0 for (u, _v), cap in caps.items() if u == 0)
        assert outgoing <= c_max

    def test_star_collector(self, star6):
        caps = ticket_capacities(star6, 0, 11)
        # 10 tickets split over 5 leaves -> 2 each, +1 base capacity.
        for leaf in range(1, 6):
            assert caps[(0, leaf)] == pytest.approx(3.0)


class TestVoteCollection:
    def test_honest_votes_mostly_collected(self, honest_graph):
        scen = no_attack_scenario(honest_graph)
        voters = list(range(1, 51))
        outcome = sumup_collect_votes(scen, 0, voters, SumUpParams(c_max=60))
        assert outcome.votes_cast == 50
        assert outcome.votes_collected >= 40

    def test_low_cmax_caps_collection(self, honest_graph):
        scen = no_attack_scenario(honest_graph)
        voters = list(range(1, 101))
        low = sumup_collect_votes(scen, 0, voters, SumUpParams(c_max=10))
        high = sumup_collect_votes(scen, 0, voters, SumUpParams(c_max=150))
        assert low.votes_collected < high.votes_collected

    def test_sybil_votes_bounded_by_attack_cut(self, honest_graph):
        """Sybil votes must squeeze through the g attack edges (plus the
        envelope's base capacity)."""
        g_attack = 3
        sybil = random_sybil_region(80, seed=42)
        scen = attach_sybil_region(honest_graph, sybil, g_attack, seed=43)
        sybil_voters = scen.sybil_nodes().tolist()
        outcome = sumup_collect_votes(scen, 0, sybil_voters, SumUpParams(c_max=40))
        # Each attack edge contributes bounded capacity.
        per_edge_cap = max(
            ticket_capacities(scen.graph, 0, 40).values(), default=1.0
        )
        assert outcome.votes_collected <= g_attack * per_edge_cap

    def test_collection_rate(self, honest_graph):
        scen = no_attack_scenario(honest_graph)
        outcome = sumup_collect_votes(scen, 0, [1, 2, 3], SumUpParams(c_max=30))
        assert outcome.collection_rate == outcome.votes_collected / 3

    def test_no_voters(self, honest_graph):
        scen = no_attack_scenario(honest_graph)
        outcome = sumup_collect_votes(scen, 0, [], SumUpParams(c_max=10))
        assert outcome.votes_collected == 0
        assert np.isnan(outcome.collection_rate)

    def test_collector_cannot_vote(self, honest_graph):
        scen = no_attack_scenario(honest_graph)
        with pytest.raises(ValueError):
            sumup_collect_votes(scen, 0, [0, 1], SumUpParams(c_max=10))

    def test_params_validation(self):
        with pytest.raises(ValueError):
            SumUpParams(c_max=0)
