"""Unit tests for SybilGuard."""

import numpy as np
import pytest

from repro.generators import erdos_renyi_gnm
from repro.graph import largest_connected_component
from repro.sybil import (
    SybilGuard,
    attach_sybil_region,
    evaluate_admission,
    no_attack_scenario,
    random_sybil_region,
    recommended_route_length,
)


@pytest.fixture(scope="module")
def fast_graph():
    g, _ = largest_connected_component(erdos_renyi_gnm(250, 1500, seed=31))
    return g


class TestRouteLengthRecommendation:
    def test_scales_as_sqrt_n_log_n(self):
        w = recommended_route_length(10_000, constant=1.0)
        assert w == pytest.approx(np.sqrt(10_000 * np.log(10_000)), abs=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            recommended_route_length(1)


class TestSybilGuard:
    def test_long_routes_admit_honest_nodes(self, fast_graph):
        w = recommended_route_length(fast_graph.num_nodes)
        guard = SybilGuard(no_attack_scenario(fast_graph), w, seed=1)
        outcome = guard.run(0)
        assert outcome.admission_rate > 0.95

    def test_short_routes_admit_fewer(self, fast_graph):
        long_rate = SybilGuard(no_attack_scenario(fast_graph), 60, seed=2).run(0).admission_rate
        short_rate = SybilGuard(no_attack_scenario(fast_graph), 2, seed=2).run(0).admission_rate
        assert short_rate < long_rate

    def test_route_length_validation(self, fast_graph):
        with pytest.raises(ValueError):
            SybilGuard(no_attack_scenario(fast_graph), 0)

    def test_explicit_suspects(self, fast_graph):
        guard = SybilGuard(no_attack_scenario(fast_graph), 20, seed=3)
        outcome = guard.run(0, suspects=[5, 6])
        assert outcome.suspects.tolist() == [5, 6]

    def test_verdicts_deterministic(self, fast_graph):
        a = SybilGuard(no_attack_scenario(fast_graph), 25, seed=4).run(1)
        b = SybilGuard(no_attack_scenario(fast_graph), 25, seed=4).run(1)
        assert np.array_equal(a.accepted, b.accepted)

    def test_sybils_with_few_attack_edges_mostly_rejected(self, fast_graph):
        """With one attack edge and short routes, most sybils cannot
        intersect the verifier's routes."""
        sybil = random_sybil_region(120, seed=5)
        scen = attach_sybil_region(fast_graph, sybil, 1, seed=6)
        guard = SybilGuard(scen, 12, seed=7)
        outcome = guard.run(0)
        metrics = evaluate_admission(scen, outcome.suspects, outcome.accepted)
        assert metrics.sybil_acceptance_rate < metrics.honest_admission_rate

    def test_accepted_nodes_accessor(self, fast_graph):
        guard = SybilGuard(no_attack_scenario(fast_graph), 30, seed=8)
        outcome = guard.run(2)
        assert set(outcome.accepted_nodes()) == set(outcome.suspects[outcome.accepted])
