"""Unit tests for SybilInfer."""

import numpy as np
import pytest

from repro.generators import erdos_renyi_gnm
from repro.graph import largest_connected_component
from repro.sybil import (
    SybilInfer,
    SybilInferParams,
    attach_sybil_region,
    generate_traces,
    no_attack_scenario,
    random_sybil_region,
)


@pytest.fixture(scope="module")
def attack_scenario():
    honest, _ = largest_connected_component(erdos_renyi_gnm(150, 900, seed=51))
    sybil = random_sybil_region(50, seed=52)
    return attach_sybil_region(honest, sybil, 3, seed=53)


class TestTraces:
    def test_shape_and_coverage(self, er_medium):
        traces = generate_traces(er_medium, 5, 3, seed=1)
        assert traces.shape == (3 * er_medium.num_nodes, 2)
        assert np.unique(traces[:, 0]).size == er_medium.num_nodes

    def test_endpoints_reachable(self, path4):
        traces = generate_traces(path4, 1, 10, seed=2)
        for s, e in traces:
            assert path4.has_edge(int(s), int(e))

    def test_validation(self, er_medium):
        with pytest.raises(ValueError):
            generate_traces(er_medium, 0, 1)
        with pytest.raises(ValueError):
            generate_traces(er_medium, 1, 0)

    def test_isolated_node_rejected(self, triangle_plus_isolated):
        with pytest.raises(ValueError):
            generate_traces(triangle_plus_isolated, 2, 1)


class TestParams:
    def test_default_walk_length_log_n(self):
        # Default is 3 * log2(n) (still O(log n); see the docstring).
        params = SybilInferParams()
        assert params.resolve_walk_length(1024) == 30
        assert params.resolve_walk_length(2) == 3

    def test_explicit_walk_length(self):
        assert SybilInferParams(walk_length=7).resolve_walk_length(100) == 7


class TestDetection:
    def test_separates_regions(self, attack_scenario):
        params = SybilInferParams(
            num_samples=250, burn_in=500, steps_per_sample=5, walks_per_node=30
        )
        result = SybilInfer(attack_scenario, params, seed=54).run(0)
        pred = result.honest_mask()
        truth = attack_scenario.honest_mask()
        accuracy = (pred == truth).mean()
        assert accuracy > 0.9

    def test_scores_in_unit_interval(self, attack_scenario):
        params = SybilInferParams(num_samples=50, burn_in=50, steps_per_sample=2)
        result = SybilInfer(attack_scenario, params, seed=55).run(0)
        assert np.all(result.scores >= 0)
        assert np.all(result.scores <= 1)

    def test_trusted_node_always_honest(self, attack_scenario):
        params = SybilInferParams(num_samples=50, burn_in=50, steps_per_sample=2)
        result = SybilInfer(attack_scenario, params, seed=56).run(5)
        assert result.scores[5] == 1.0

    def test_detected_sybils_complement(self, attack_scenario):
        params = SybilInferParams(num_samples=50, burn_in=50, steps_per_sample=2)
        result = SybilInfer(attack_scenario, params, seed=57).run(0)
        detected = set(result.detected_sybils().tolist())
        honest = set(np.flatnonzero(result.honest_mask()).tolist())
        assert not (detected & honest)
        assert detected | honest == set(range(attack_scenario.graph.num_nodes))

    def test_no_attack_keeps_most_nodes_honest(self):
        honest, _ = largest_connected_component(erdos_renyi_gnm(120, 720, seed=58))
        scen = no_attack_scenario(honest)
        params = SybilInferParams(num_samples=100, burn_in=200, steps_per_sample=3)
        result = SybilInfer(scen, params, seed=59).run(0)
        assert result.honest_mask().mean() > 0.8
