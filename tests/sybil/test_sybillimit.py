"""Unit tests for the SybilLimit implementation (Figure 8's subject)."""

import numpy as np
import pytest

from repro.generators import two_community_bridge, erdos_renyi_gnm
from repro.graph import largest_connected_component
from repro.sybil import (
    SybilLimit,
    SybilLimitParams,
    attach_sybil_region,
    default_num_instances,
    evaluate_admission,
    no_attack_scenario,
    random_sybil_region,
)


@pytest.fixture(scope="module")
def fast_graph():
    g, _ = largest_connected_component(erdos_renyi_gnm(300, 1800, seed=21))
    return g


@pytest.fixture(scope="module")
def slow_scenario():
    g, _ = two_community_bridge(150, 8, 2, seed=22)
    return no_attack_scenario(g)


class TestParams:
    def test_default_num_instances(self):
        assert default_num_instances(10_000) == 300
        assert default_num_instances(10_000, r0=1.0) == 100
        with pytest.raises(ValueError):
            default_num_instances(0)

    def test_resolve_instances_explicit(self):
        params = SybilLimitParams(route_length=10, num_instances=7)
        assert params.resolve_instances(999) == 7

    def test_resolve_instances_birthday(self):
        params = SybilLimitParams(route_length=10, r0=2.0)
        assert params.resolve_instances(2500) == 100

    def test_invalid_instances(self):
        with pytest.raises(ValueError):
            SybilLimitParams(route_length=10, num_instances=0).resolve_instances(10)

    def test_balance_base_default_log_r(self):
        params = SybilLimitParams(route_length=10)
        assert params.resolve_balance_base(100) == pytest.approx(np.log(100))
        assert params.resolve_balance_base(1) == 1.0

    def test_balance_base_override(self):
        params = SybilLimitParams(route_length=10, balance_base=9.0)
        assert params.resolve_balance_base(5) == 9.0


class TestNoAttackerAdmission:
    def test_admission_increases_with_walk_length(self, slow_scenario):
        protocol = SybilLimit(
            slow_scenario, SybilLimitParams(route_length=200), seed=1
        )
        outcomes = protocol.admission_sweep(0, [5, 40, 200])
        rates = [o.admission_rate for o in outcomes]
        assert rates[0] < rates[1] < rates[2]
        assert rates[2] > 0.9

    def test_fast_graph_admits_quickly(self, fast_graph):
        protocol = SybilLimit(
            no_attack_scenario(fast_graph), SybilLimitParams(route_length=30), seed=2
        )
        outcome = protocol.run(0)
        assert outcome.admission_rate > 0.95

    def test_accepted_implies_intersected(self, slow_scenario):
        protocol = SybilLimit(slow_scenario, SybilLimitParams(route_length=50), seed=3)
        outcome = protocol.run(0)
        assert np.all(outcome.intersected[outcome.accepted])

    def test_balance_off_equals_intersection(self, fast_graph):
        params = SybilLimitParams(route_length=30, enforce_balance=False)
        protocol = SybilLimit(no_attack_scenario(fast_graph), params, seed=4)
        outcome = protocol.run(0)
        assert np.array_equal(outcome.accepted, outcome.intersected)

    def test_explicit_suspects(self, fast_graph):
        protocol = SybilLimit(
            no_attack_scenario(fast_graph), SybilLimitParams(route_length=20), seed=5
        )
        outcome = protocol.run(0, suspects=[1, 2, 3])
        assert outcome.suspects.tolist() == [1, 2, 3]
        assert outcome.accepted.size == 3

    def test_accepted_nodes_subset_of_suspects(self, fast_graph):
        protocol = SybilLimit(
            no_attack_scenario(fast_graph), SybilLimitParams(route_length=20), seed=6
        )
        outcome = protocol.run(0)
        assert set(outcome.accepted_nodes()) <= set(outcome.suspects.tolist())

    def test_sweep_is_sorted_and_deduped(self, fast_graph):
        protocol = SybilLimit(
            no_attack_scenario(fast_graph), SybilLimitParams(route_length=30), seed=7
        )
        outcomes = protocol.admission_sweep(0, [20, 5, 20])
        assert [o.route_length for o in outcomes] == [5, 20]

    def test_empty_admission_rate_nan(self, fast_graph):
        protocol = SybilLimit(
            no_attack_scenario(fast_graph), SybilLimitParams(route_length=10), seed=8
        )
        outcome = protocol.run(0, suspects=[])
        assert np.isnan(outcome.admission_rate)


class TestWithAttacker:
    def test_sybil_acceptance_grows_with_walk_length(self, fast_graph):
        sybil = random_sybil_region(100, seed=9)
        scen = attach_sybil_region(fast_graph, sybil, 3, seed=10)
        protocol = SybilLimit(scen, SybilLimitParams(route_length=120), seed=11)
        outcomes = protocol.admission_sweep(0, [10, 120])
        counts = []
        for outcome in outcomes:
            metrics = evaluate_admission(scen, outcome.suspects, outcome.accepted)
            counts.append(metrics.sybil_accepted)
        assert counts[1] > counts[0]

    def test_balance_condition_limits_sybils(self, fast_graph):
        """With balance off, an over-long walk accepts many more sybils."""
        sybil = random_sybil_region(150, seed=12)
        scen = attach_sybil_region(fast_graph, sybil, 2, seed=13)
        with_balance = SybilLimit(
            scen, SybilLimitParams(route_length=80), seed=14
        ).run(0)
        without_balance = SybilLimit(
            scen, SybilLimitParams(route_length=80, enforce_balance=False), seed=14
        ).run(0)
        m_with = evaluate_admission(scen, with_balance.suspects, with_balance.accepted)
        m_without = evaluate_admission(scen, without_balance.suspects, without_balance.accepted)
        assert m_with.sybil_accepted <= m_without.sybil_accepted

    def test_deterministic(self, fast_graph):
        sybil = random_sybil_region(50, seed=15)
        scen = attach_sybil_region(fast_graph, sybil, 2, seed=16)
        a = SybilLimit(scen, SybilLimitParams(route_length=40), seed=17).run(0, seed=18)
        b = SybilLimit(scen, SybilLimitParams(route_length=40), seed=17).run(0, seed=18)
        assert np.array_equal(a.accepted, b.accepted)
