"""Unit tests for SybilRank."""

import numpy as np
import pytest

from repro.generators import erdos_renyi_gnm
from repro.graph import largest_connected_component
from repro.sybil import (
    attach_sybil_region,
    random_sybil_region,
    ranking_quality,
    recommended_iterations,
    sybilrank,
)


@pytest.fixture(scope="module")
def scenario():
    honest, _ = largest_connected_component(erdos_renyi_gnm(400, 2400, seed=81))
    sybil = random_sybil_region(120, seed=82)
    return attach_sybil_region(honest, sybil, 4, seed=83)


@pytest.fixture(scope="module")
def seeds(scenario):
    return [0] + [int(v) for v in scenario.graph.neighbors(0)]


class TestSybilRank:
    def test_recommended_iterations(self):
        assert recommended_iterations(1024) == 10
        with pytest.raises(ValueError):
            recommended_iterations(1)

    def test_trust_conserved_during_propagation(self, scenario, seeds):
        result = sybilrank(scenario, seeds, iterations=5)
        total = (result.scores * scenario.graph.degrees).sum()
        assert total == pytest.approx(scenario.graph.num_nodes)

    def test_seed_validation(self, scenario):
        with pytest.raises(ValueError):
            sybilrank(scenario, [])
        with pytest.raises(ValueError):
            sybilrank(scenario, [10**9])
        with pytest.raises(ValueError):
            sybilrank(scenario, [0], iterations=-1)

    def test_zero_iterations_trust_stays_at_seeds(self, scenario, seeds):
        result = sybilrank(scenario, seeds, iterations=0)
        non_seed = np.setdiff1d(np.arange(scenario.graph.num_nodes), seeds)
        assert np.all(result.scores[non_seed] == 0)

    def test_ranks_sybils_below_honest(self, scenario, seeds):
        result = sybilrank(scenario, seeds)
        auc = ranking_quality(result, scenario)
        assert auc > 0.95

    def test_accept_top_rule(self, scenario, seeds):
        result = sybilrank(scenario, seeds)
        top = result.accept_top(scenario.num_honest)
        honest_share = (top < scenario.num_honest).mean()
        assert honest_share > 0.95
        with pytest.raises(ValueError):
            result.accept_top(-1)

    def test_too_many_iterations_approach_stationary(self):
        """At stationarity degree-normalised trust is constant, so the
        ranking collapses toward AUC 0.5.

        Needs a scenario whose *combined* graph equilibrates within a
        practical iteration budget, i.e. a heavy attack (the relaxation
        time scales like 1/Phi^2 of the attack cut — with g = 4 it runs
        to ~10^6 iterations, which is exactly why SybilRank works at all).
        """
        honest, _ = largest_connected_component(erdos_renyi_gnm(120, 720, seed=86))
        sybil = random_sybil_region(60, seed=87)
        scen = attach_sybil_region(honest, sybil, 80, seed=88)
        seeds = [0] + [int(v) for v in scen.graph.neighbors(0) if scen.is_honest(v)]
        early = ranking_quality(sybilrank(scen, seeds, iterations=4), scen)
        late = ranking_quality(sybilrank(scen, seeds, iterations=20_000), scen)
        assert late < early
        assert late == pytest.approx(0.5, abs=0.1)

    def test_auc_extremes(self, scenario):
        from repro.sybil.sybilrank import SybilRankResult

        n = scenario.graph.num_nodes
        perfect = np.zeros(n)
        perfect[: scenario.num_honest] = 1.0
        result = SybilRankResult(perfect, 0, np.asarray([0]))
        assert ranking_quality(result, scenario) == 1.0
        constant = SybilRankResult(np.ones(n), 0, np.asarray([0]))
        assert ranking_quality(constant, scenario) == pytest.approx(0.5)

    def test_slow_mixing_honest_region_needs_more_iterations(self):
        """The paper's thesis applied to SybilRank: O(log n) iterations
        under-rank slow-mixing honest communities."""
        from repro.datasets import load_cached

        honest = load_cached("physics1")
        scen = attach_sybil_region(honest, random_sybil_region(300, seed=84), 5, seed=85)
        seeds = [0] + [int(v) for v in honest.neighbors(0)]
        log_n = recommended_iterations(scen.graph.num_nodes)
        early = ranking_quality(sybilrank(scen, seeds, iterations=log_n), scen)
        tuned = ranking_quality(sybilrank(scen, seeds, iterations=200), scen)
        assert tuned > early
