"""Unit tests for the Whānau DHT implementation."""

import numpy as np
import pytest

from repro.generators import erdos_renyi_gnm, two_community_bridge
from repro.graph import largest_connected_component
from repro.sybil import WhanauTables, build_whanau, lookup_success_rate


@pytest.fixture(scope="module")
def expander():
    g, _ = largest_connected_component(erdos_renyi_gnm(300, 1800, seed=61))
    return g


@pytest.fixture(scope="module")
def expander_tables(expander):
    return build_whanau(expander, 20, seed=62)


class TestConstruction:
    def test_keys_distinct_on_ring(self, expander_tables):
        keys = expander_tables.keys
        assert np.unique(keys).size == keys.size
        assert keys.min() >= 0 and keys.max() < 1

    def test_fingers_sorted_by_key(self, expander_tables):
        t = expander_tables
        for v in range(0, t.num_nodes, 37):
            fingers = t.fingers_of(v)
            fkeys = t.finger_keys[t.finger_ptr[v]:t.finger_ptr[v + 1]]
            assert np.all(np.diff(fkeys) > 0)
            assert np.allclose(t.keys[fingers], fkeys)

    def test_successor_tables_sorted(self, expander_tables):
        t = expander_tables
        for v in range(0, t.num_nodes, 41):
            succ = t.successors_of(v)
            assert np.all(np.diff(succ) > 0)

    def test_deterministic(self, expander):
        a = build_whanau(expander, 10, seed=5)
        b = build_whanau(expander, 10, seed=5)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.finger_nodes, b.finger_nodes)
        assert np.array_equal(a.successor_keys, b.successor_keys)

    def test_validation(self, expander):
        from repro.graph import Graph

        with pytest.raises(ValueError):
            build_whanau(expander, 0)
        with pytest.raises(ValueError):
            build_whanau(Graph.empty(5), 3)
        iso = Graph.from_edges([(0, 1)], num_nodes=3)
        with pytest.raises(ValueError, match="isolated"):
            build_whanau(iso, 3)

    def test_custom_table_sizes(self, expander):
        t = build_whanau(expander, 10, num_fingers=8, num_successors=8, seed=6)
        for v in range(0, t.num_nodes, 50):
            assert t.fingers_of(v).size <= 8


class TestLookup:
    def test_high_success_on_expander(self, expander_tables):
        stats = lookup_success_rate(expander_tables, num_lookups=300, seed=7)
        assert stats.success_rate > 0.9

    def test_self_lookup(self, expander_tables):
        t = expander_tables
        hits = sum(
            t.lookup(v, float(t.keys[v])) for v in range(0, t.num_nodes, 23)
        )
        assert hits > 0

    def test_success_improves_with_walk_length(self):
        """The headline: short walks on a bottlenecked graph break Whānau."""
        g, _ = two_community_bridge(200, 8, 2, seed=63)
        short = build_whanau(g, 3, seed=64)
        long = build_whanau(g, 120, seed=64)
        r_short = lookup_success_rate(short, num_lookups=250, seed=65).success_rate
        r_long = lookup_success_rate(long, num_lookups=250, seed=65).success_rate
        assert r_long > r_short + 0.2

    def test_stats_accessors(self, expander_tables):
        stats = lookup_success_rate(expander_tables, num_lookups=50, seed=8)
        assert stats.lookups == 50
        assert 0 <= stats.successes <= 50
        assert stats.walk_length == expander_tables.walk_length

    def test_lookup_bounds_check(self, expander_tables):
        with pytest.raises(IndexError):
            expander_tables.lookup(10**6, 0.5)
