"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CheckpointCorruption,
    ConfigurationError,
    ConvergenceError,
    DatasetError,
    GraphFormatError,
    NotConnectedError,
    NotErgodicError,
    ReproError,
    RouteError,
    RuntimeFailure,
    SamplingError,
    ScenarioError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            GraphFormatError,
            NotConnectedError,
            NotErgodicError,
            ConvergenceError,
            DatasetError,
            ScenarioError,
            SamplingError,
            RouteError,
            RuntimeFailure,
            CheckpointCorruption,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_error_compat(self):
        """Callers catching stdlib types keep working."""
        assert issubclass(GraphFormatError, ValueError)
        assert issubclass(NotConnectedError, ValueError)
        assert issubclass(DatasetError, KeyError)
        assert issubclass(ConvergenceError, RuntimeError)
        assert issubclass(ConfigurationError, ValueError)
        assert issubclass(RouteError, ValueError)
        assert issubclass(RuntimeFailure, RuntimeError)

    def test_checkpoint_corruption_is_a_runtime_failure(self):
        """Catching the broad runtime-failure class also nets checkpoint
        corruption — the CLI's exit-code mapping relies on ordering."""
        assert issubclass(CheckpointCorruption, RuntimeFailure)
        with pytest.raises(RuntimeFailure):
            raise CheckpointCorruption("bad shard")

    def test_convergence_error_carries_partial(self):
        err = ConvergenceError("nope", partial=0.42)
        assert err.partial == 0.42
        assert "nope" in str(err)

    def test_convergence_error_default_partial(self):
        assert ConvergenceError("x").partial is None

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise SamplingError("too big")
