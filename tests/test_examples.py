"""Syntax/structure checks for the example scripts.

The examples double as documentation; full runs live in the benchmark
tier (several take minutes), but every example must at least compile,
carry a main() entry point, and a usage docstring.
"""

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExamples:
    def test_compiles(self, path):
        source = path.read_text(encoding="utf-8")
        compile(source, str(path), "exec")

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), path.name

    def test_has_main_guard(self, path):
        source = path.read_text(encoding="utf-8")
        assert 'if __name__ == "__main__":' in source, path.name
        assert "def main(" in source, path.name

    def test_docstring_has_run_line(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        doc = ast.get_docstring(tree)
        assert "Run:" in doc, f"{path.name} docstring should show how to run it"

    def test_imports_resolve(self, path):
        """Every repro import the example references must exist."""
        import importlib

        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), f"{node.module}.{alias.name}"


def test_at_least_five_examples():
    assert len(EXAMPLE_FILES) >= 5
