"""The ``ExecutionPolicy`` migration is finished inside the package.

Legacy ``workers=``/``block_size=`` kwargs survive on the public entry
points as deprecated aliases, but no *internal* caller may use them:
every runner, operator and service path threads a policy object (or
``None``) through :func:`repro.core.runtime.as_policy` — the single
place the ``DeprecationWarning`` is emitted.  These tests run
representative slices of every layer with ``DeprecationWarning``
escalated to an error, so an internal legacy call (or a second,
stray warning site) fails loudly here instead of nagging users.

The removal timeline for the aliases themselves is documented in
``docs/API.md`` ("Legacy keyword aliases").
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    TransitionOperator,
    as_policy,
    estimate_mixing_time,
    measure_mixing,
    mixing_trend,
    slem_trend,
)
from repro.errors import ConfigurationError
from repro.graph import EdgeDelta, Graph, TemporalGraph
from repro.service import OperatorRegistry, QueryEngine, ResultCache, ServiceClient


def _test_graph() -> Graph:
    """A small connected, non-bipartite graph (12-cycle plus +2 chords)."""
    edges = [(i, (i + 1) % 12) for i in range(12)]
    edges += [(i, (i + 2) % 12) for i in range(12)]
    return Graph.from_edges(np.array(edges, dtype=np.int64))


def _test_temporal() -> TemporalGraph:
    # Ring plus one chord: connected and non-bipartite in every window.
    base = Graph.from_edges(
        np.array([(i, (i + 1) % 12) for i in range(12)] + [(0, 2)], dtype=np.int64)
    )
    temporal = TemporalGraph(base)
    temporal.append(EdgeDelta(10, insert=[(3, 5), (4, 6)]))
    temporal.append(EdgeDelta(20, insert=[(1, 3), (7, 9)]))
    return temporal


@pytest.fixture()
def forbid_deprecation_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


class TestInternalPathsAreWarningFree:
    """Every layer's sweep path, with DeprecationWarning as an error."""

    def test_core_sweeps(self, forbid_deprecation_warnings):
        graph = _test_graph()
        for policy in (None, ExecutionPolicy(workers=2, execution="threads")):
            measure_mixing(graph, [1, 3, 5], sources=[0, 4], policy=policy)
            estimate_mixing_time(graph, 0.25, sources=[0], policy=policy)

    def test_operator_paths(self, forbid_deprecation_warnings):
        operator = TransitionOperator(_test_graph())
        operator.hitting_times([0, 3], 0.25, policy=ExecutionPolicy(block_size=4))
        operator.stationary()

    def test_incremental_trend_paths(self, forbid_deprecation_warnings):
        temporal = _test_temporal()
        slem_trend(temporal, policy=ExecutionPolicy(workers=1))
        mixing_trend(temporal, [1, 3], num_sources=4, policy=None)

    def test_service_paths(self, forbid_deprecation_warnings):
        graph = _test_graph()
        temporal = _test_temporal()
        engine = QueryEngine(
            registry=OperatorRegistry(loader=lambda name: graph, publish=False),
            cache=ResultCache(),
            policy=ExecutionPolicy(workers=1),
            coalesce_window=0.0,
            temporal_loader=lambda name: temporal,
        )
        with engine:
            client = ServiceClient(engine)
            client.mixing_time("toy", 0, 0.25)
            client.variation_curve("toy", [0, 5], [1, 3])
            client.slem("toy")
            client.admission("toy", [1, 2], 4)
            client.slem_trend("toy")
            client.mixing_trend("toy", [1, 3], num_sources=4)
            client.append_delta("toy", 30, insert=[(2, 5)])

    def test_experiment_runner_path(self, forbid_deprecation_warnings):
        # The harness threads config.execution_policy end to end; the
        # temporal runner is the newest (and cheapest end-to-end) one.
        from repro.experiments import FAST
        from repro.experiments.temporal import trend_measurements

        trend_measurements(FAST, names=("temporal_mathoverflow",))


class TestLegacySeamStillFires:
    """The aliases remain functional — and warn — at the public boundary."""

    def test_as_policy_warns_once_per_call_site(self):
        with pytest.warns(DeprecationWarning, match="workers=/block_size="):
            policy = as_policy(None, workers=2, stacklevel=2)
        assert policy.workers == 2

    def test_public_entry_point_warns(self):
        graph = _test_graph()
        with pytest.warns(DeprecationWarning):
            measure_mixing(graph, [1], sources=[0], workers=1)

    def test_policy_and_legacy_kwargs_conflict(self):
        with pytest.raises(ConfigurationError, match="not both"):
            as_policy(DEFAULT_POLICY, workers=2)

    def test_no_kwargs_returns_default_singleton(self):
        assert as_policy(None) is DEFAULT_POLICY
