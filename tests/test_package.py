"""Package-surface tests: every public name resolves, exports stay honest."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.graph",
    "repro.generators",
    "repro.core",
    "repro.sampling",
    "repro.datasets",
    "repro.sybil",
    "repro.community",
    "repro.experiments",
]


class TestPublicSurface:
    @pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro"])
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), module_name
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_no_duplicate_exports(self, module_name):
        module = importlib.import_module(module_name)
        assert len(module.__all__) == len(set(module.__all__)), module_name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_exceptions_reachable_from_root(self):
        assert issubclass(repro.NotConnectedError, repro.ReproError)
        assert issubclass(repro.GraphFormatError, repro.ReproError)

    def test_cli_entry_point_importable(self):
        from repro.cli import main

        assert callable(main)

    @pytest.mark.parametrize("module_name", SUBPACKAGES + ["repro", "repro.cli", "repro._util", "repro.errors"])
    def test_docstrings_present(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), module_name

    def test_every_public_callable_documented(self):
        """Every function/class exported by a subpackage has a docstring."""
        import inspect

        for module_name in SUBPACKAGES:
            module = importlib.import_module(module_name)
            for name in module.__all__:
                obj = getattr(module, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    assert obj.__doc__ and obj.__doc__.strip(), f"{module_name}.{name}"
