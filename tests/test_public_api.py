"""Snapshot test pinning the curated public surface (:mod:`repro.api`).

``repro.api.__all__`` is compared name-for-name against the committed
manifest ``tests/data/public_api_manifest.txt``.  Any addition, rename
or removal of a public name fails here until the manifest is updated in
the same change — surface evolution becomes an explicit, reviewable
diff instead of an accident.

Regenerate the manifest after an *intentional* surface change with::

    PYTHONPATH=src python -c "import repro.api; \
        print('\\n'.join(repro.api.__all__))" > tests/data/public_api_manifest.txt
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
import repro.api as api

MANIFEST = Path(__file__).parent / "data" / "public_api_manifest.txt"


def _manifest_names() -> list:
    return [
        line.strip()
        for line in MANIFEST.read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.startswith("#")
    ]


class TestSurfaceSnapshot:
    def test_all_matches_committed_manifest_exactly(self):
        """The full ordered surface is pinned — additions and removals
        both fail until the manifest is updated deliberately."""
        expected = _manifest_names()
        actual = list(api.__all__)
        added = sorted(set(actual) - set(expected))
        removed = sorted(set(expected) - set(actual))
        assert actual == expected, (
            f"public surface drifted from tests/data/public_api_manifest.txt "
            f"(added={added}, removed={removed}); if the change is "
            f"intentional, regenerate the manifest (see module docstring)"
        )

    def test_every_name_in_all_is_importable(self):
        for name in api.__all__:
            assert hasattr(api, name), f"repro.api.__all__ lists {name!r} but it is not defined"

    def test_no_duplicates(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_manifest_has_no_duplicates(self):
        names = _manifest_names()
        assert len(names) == len(set(names))


class TestSurfaceContracts:
    """Spot-checks that the curated names are the same objects as their
    home-module definitions (re-exports, not copies)."""

    def test_execution_policy_identity(self):
        from repro.core.runtime import ExecutionPolicy

        assert api.ExecutionPolicy is ExecutionPolicy
        assert repro.ExecutionPolicy is ExecutionPolicy

    def test_error_taxonomy_identity_and_hierarchy(self):
        import repro.errors as errors

        for name in (
            "ReproError",
            "ConfigurationError",
            "RouteError",
            "RuntimeFailure",
            "CheckpointCorruption",
        ):
            assert getattr(api, name) is getattr(errors, name)
        assert issubclass(api.CheckpointCorruption, api.RuntimeFailure)
        assert issubclass(api.RuntimeFailure, api.ReproError)
        assert issubclass(api.RouteError, (api.ReproError, ValueError))

    def test_measurement_entry_points_identity(self):
        from repro.core import estimate_mixing_time, measure_mixing

        assert api.measure_mixing is measure_mixing
        assert api.estimate_mixing_time is estimate_mixing_time

    def test_top_level_package_exports_runtime_names(self):
        for name in (
            "ExecutionPolicy",
            "RouteError",
            "RuntimeFailure",
            "CheckpointCorruption",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_version_is_exported(self):
        assert api.__version__ == repro.__version__


class TestPolicySurface:
    """The ExecutionPolicy fields named in docs/API.md exist and default
    as documented — a rename in the dataclass breaks this before it
    breaks a user."""

    FIELDS = (
        "workers",
        "block_size",
        "max_retries",
        "shard_timeout",
        "checkpoint_dir",
        "resume",
        "telemetry",
        "backend",
        "execution",
        "memory_budget",
    )

    def test_fields(self):
        import dataclasses

        names = [f.name for f in dataclasses.fields(api.ExecutionPolicy)]
        assert names == list(self.FIELDS)

    def test_defaults(self):
        p = api.DEFAULT_POLICY
        assert p.workers is None
        assert p.block_size is None
        assert p.max_retries == 2
        assert p.shard_timeout is None
        assert p.checkpoint_dir is None
        assert p.resume is True
        assert p.telemetry is False
        assert p.backend == "numpy"
        assert p.execution == "processes"

    def test_frozen(self):
        with pytest.raises(Exception):
            api.DEFAULT_POLICY.workers = 4
