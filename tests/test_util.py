"""Unit tests for internal helpers."""

import numpy as np
import pytest

from repro._util import (
    as_rng,
    check_node_index,
    check_probability_vector,
    format_count,
    geometric_grid,
    percentile_slices,
    stable_hash_u64,
    unique_sorted_edges,
)


class TestAsRng:
    def test_passthrough(self):
        rng = np.random.default_rng(1)
        assert as_rng(rng) is rng

    def test_int_seed_deterministic(self):
        assert as_rng(5).integers(1000) == as_rng(5).integers(1000)

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestProbabilityVector:
    def test_valid(self):
        out = check_probability_vector([0.25, 0.75])
        assert out.dtype == np.float64

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.ones((2, 2)) / 4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_probability_vector([-0.5, 1.5])

    def test_rejects_unnormalised(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector([0.3, 0.3])


class TestNodeIndex:
    def test_valid(self):
        assert check_node_index(3, 5) == 3

    def test_numpy_int(self):
        assert check_node_index(np.int64(2), 5) == 2

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            check_node_index(5, 5)
        with pytest.raises(IndexError):
            check_node_index(-1, 5)


class TestUniqueSortedEdges:
    def test_orientation_and_dedup(self):
        u, v = unique_sorted_edges(np.asarray([3, 1, 1]), np.asarray([1, 3, 1]))
        assert u.tolist() == [1]
        assert v.tolist() == [3]

    def test_drops_loops(self):
        u, v = unique_sorted_edges(np.asarray([2]), np.asarray([2]))
        assert u.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            unique_sorted_edges(np.asarray([1]), np.asarray([1, 2]))


class TestGrids:
    def test_geometric_grid_endpoints(self):
        grid = geometric_grid(0.001, 0.5, 10)
        assert grid[0] == pytest.approx(0.001)
        assert grid[-1] == pytest.approx(0.5)
        ratios = grid[1:] / grid[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_grid(0, 1, 5)
        with pytest.raises(ValueError):
            geometric_grid(0.1, 1, 1)


class TestPercentileSlices:
    def test_bands(self):
        values = np.arange(100, dtype=float)
        out = percentile_slices(values, [("low", 0, 10), ("high", 90, 100)])
        assert out["low"] == pytest.approx(np.mean(np.arange(10)))
        assert out["high"] == pytest.approx(np.mean(np.arange(90, 100)))

    def test_tiny_input(self):
        out = percentile_slices(np.asarray([5.0]), [("only", 0, 100)])
        assert out["only"] == 5.0

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            percentile_slices(np.asarray([1.0]), [("bad", 50, 10)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_slices(np.asarray([]), [("x", 0, 100)])


class TestMisc:
    def test_format_count(self):
        assert format_count(1234567) == "1,234,567"

    def test_stable_hash_deterministic(self):
        assert stable_hash_u64("a", 1) == stable_hash_u64("a", 1)
        assert stable_hash_u64("a", 1) != stable_hash_u64("a", 2)
